#!/usr/bin/env python
"""Run a benchmark suite and emit a slim, versioned JSON baseline.

``pytest-benchmark``'s native ``--benchmark-json`` output is rich but
noisy (hostnames, timestamps, per-round samples) — unsuitable for
committing and diffing.  This harness runs a suite, distills it to a
stable machine-readable document, and can compare a fresh run against a
committed baseline:

    # regenerate the committed baselines
    python benchmarks/bench_to_json.py --output benchmarks/BENCH_substrate.json
    python benchmarks/bench_to_json.py --suite crypto \\
        --output benchmarks/BENCH_crypto.json

    # CI smoke: fresh run, fail if any benchmark slowed >2x vs baseline
    python benchmarks/bench_to_json.py --output /tmp/bench_now.json \\
        --compare benchmarks/BENCH_substrate.json --max-regression 2.0

Output schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "suite": "substrate" | "crypto" | ... | "shard",
      "benchmarks": {"<name>": {"mean_s": ..., "stddev_s": ..., "rounds": ...,
                                "extra_info": {...}}},   # only when recorded
      "derived": {"<metric>": <numerator / denominator>}
    }

A derived metric's numerator/denominator is a benchmark's mean by
default; a ``["<name>", "<key>"]`` spec reads ``extra_info["<key>"]``
instead (the shard suite derives its speedups from CPU-time
measurements the benchmarks record, not from wall-clock means).

Absolute means are hardware-dependent; the *ratios* (the derived
speedups and the regression comparison) are what the numbers are for.

``--suite all`` runs nothing: it folds every committed
``BENCH_<suite>.json`` into one flat document (names and derived
metrics prefixed ``<suite>:``) so the whole perf history can be
tracked — and regression-compared — as a single file.

Suites:

* ``substrate`` — medium fan-out / engine throughput (PR 2); derived
  ``fanout_speedup_150_nodes`` (grid vs brute).
* ``crypto`` — RSA/ring/trapdoor primitives plus the crypto fast path
  (PR 3); derived cached-vs-uncached speedups for the hello-verify and
  trapdoor-open workloads and the CRT precompute micro-benchmark.
* ``engine`` — scheduler backends and the tracer fast path (PR 4);
  derived wheel-vs-heap speedups for the MAC-timer-churn microbench
  (acceptance floor: 2x) and the end-to-end scenario (floor: no
  regression), plus the trace keep-vs-drop path ratio.
* ``faults`` — fault-injection machinery (PR 5): loss-model draw
  throughput plus end-to-end scenarios under each impairment regime;
  derived ``*_scenario_overhead`` ratios vs the unimpaired leg (the
  zero-cost-when-disabled guarantee).
* ``analysis`` — the static-analysis engine (PR 6): full ``src/`` lint
  in intra vs interprocedural mode and with a cold vs warm incremental
  cache; derived ``interproc_overhead`` (price of cross-module
  reasoning) and ``incremental_cache_speedup`` (rule dispatch skipped
  on unchanged files).
* ``hotpath`` — the vectorized core (PR 7): neighbor-gather and batch
  mobility micro-kernels (object/scalar vs numpy-batched; acceptance
  floor 5x each) and a 150-node end-to-end scenario with the fast
  stack off vs on (floor 1.3x).
* ``campaign`` — the campaign layer (PR 10): one 8-point matrix run
  cold (empty store) vs warm (pre-filled store); derived
  ``campaign_warm_cache_speedup`` (acceptance floor: 10x — reruns of a
  completed campaign must be effectively free).
* ``shard`` — sharded execution (PR 8, scaled up in PR 9): clustered
  community scenarios at 150/600/2000 nodes vs 4 column shards plus a
  10000-node point vs 8 shards; derived ``shard4_speedup_<n>_nodes``
  and ``shard8_speedup_10000_nodes`` = engine CPU seconds over the
  sharded run's critical path (floors: 2x at 600 nodes, 4x at 10000),
  and ``shard4_ipc_messages_per_round_2000_nodes`` (floor: <= 8 — the
  piggybacked promise protocol's 2 messages per shard per round).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = pathlib.Path(__file__).resolve().parent
SCHEMA_VERSION = 1

#: Per-suite benchmark file and derived ratio metrics
#: (name -> (numerator benchmark, denominator benchmark)).
SUITES: dict[str, dict] = {
    "substrate": {
        "file": "bench_simulator.py",
        "derived": {
            "fanout_speedup_150_nodes": (
                "test_medium_fanout_150_nodes[brute]",
                "test_medium_fanout_150_nodes[grid]",
            ),
        },
    },
    "crypto": {
        "file": "bench_crypto_costs.py",
        "derived": {
            "hello_verify_cached_speedup": (
                "test_hello_verify_ring5_10_receivers[off]",
                "test_hello_verify_ring5_10_receivers[on]",
            ),
            "trapdoor_open_cached_speedup": (
                "test_trapdoor_open_region10[off]",
                "test_trapdoor_open_region10[on]",
            ),
            "crt_precompute_speedup": (
                "test_rsa512_private_apply[recompute]",
                "test_rsa512_private_apply[precomputed]",
            ),
        },
    },
    "faults": {
        "file": "bench_faults.py",
        "derived": {
            "bernoulli_scenario_overhead": (
                "test_scenario_impairment[bernoulli]",
                "test_scenario_impairment[none]",
            ),
            "gilbert_scenario_overhead": (
                "test_scenario_impairment[gilbert]",
                "test_scenario_impairment[none]",
            ),
            "churn_scenario_overhead": (
                "test_scenario_impairment[churn]",
                "test_scenario_impairment[none]",
            ),
        },
    },
    "analysis": {
        "file": "bench_analysis.py",
        "derived": {
            "interproc_overhead": (
                "test_full_src_analysis[interproc]",
                "test_full_src_analysis[intra]",
            ),
            "incremental_cache_speedup": (
                "test_full_src_analysis_cached[cold]",
                "test_full_src_analysis_cached[warm]",
            ),
        },
    },
    "hotpath": {
        "file": "bench_hotpath.py",
        "derived": {
            "neighbor_gather_speedup": (
                "test_neighbor_gather_150_nodes[obj]",
                "test_neighbor_gather_150_nodes[array]",
            ),
            "batch_mobility_speedup": (
                "test_batch_mobility_150_legs[scalar]",
                "test_batch_mobility_150_legs[batch]",
            ),
            "scenario_hotpath_speedup": (
                "test_end_to_end_scenario_150[baseline]",
                "test_end_to_end_scenario_150[fast]",
            ),
        },
    },
    "shard": {
        "file": "bench_shard.py",
        "derived": {
            "shard4_speedup_150_nodes": (
                ("test_shard_scenario[engine-150]", "cpu_seconds"),
                ("test_shard_scenario[shards4-150]", "critical_path_seconds"),
            ),
            "shard4_speedup_600_nodes": (
                ("test_shard_scenario[engine-600]", "cpu_seconds"),
                ("test_shard_scenario[shards4-600]", "critical_path_seconds"),
            ),
            "shard4_speedup_2000_nodes": (
                ("test_shard_scenario[engine-2000]", "cpu_seconds"),
                ("test_shard_scenario[shards4-2000]", "critical_path_seconds"),
            ),
            "shard8_speedup_10000_nodes": (
                ("test_shard_scenario[engine-10000]", "cpu_seconds"),
                ("test_shard_scenario[shards8-10000]", "critical_path_seconds"),
            ),
            # Not a ratio: the literal denominator publishes the raw
            # IPC economy so the piggybacking floor (<= 2*2*shards
            # messages per round) is pinnable from the committed file.
            "shard4_ipc_messages_per_round_2000_nodes": (
                ("test_shard_scenario[shards4-2000]", "ipc_messages_per_round"),
                1,
            ),
        },
    },
    "campaign": {
        "file": "bench_campaign.py",
        "derived": {
            "campaign_warm_cache_speedup": (
                "test_campaign_cache[cold]",
                "test_campaign_cache[warm]",
            ),
        },
    },
    "engine": {
        "file": "bench_engine.py",
        "derived": {
            "mac_timer_churn_wheel_speedup": (
                "test_mac_timer_churn[heap]",
                "test_mac_timer_churn[wheel]",
            ),
            "scenario_wheel_speedup": (
                "test_end_to_end_scenario[heap]",
                "test_end_to_end_scenario[wheel]",
            ),
            "trace_drop_path_speedup": (
                "test_trace_emit_20k[keep]",
                "test_trace_emit_20k[drop]",
            ),
        },
    },
}

#: Backward-compatible aliases (pre-multi-suite callers/tests).
BENCH_FILE = BENCH_DIR / SUITES["substrate"]["file"]
DERIVED = SUITES["substrate"]["derived"]


def run_suite(pytest_args: list[str] | None = None, suite: str = "substrate") -> dict:
    """Run one benchmark suite; return pytest-benchmark's raw JSON."""
    bench_file = BENCH_DIR / SUITES[suite]["file"]
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = pathlib.Path(tmp) / "raw.json"
        cmd = [
            sys.executable, "-m", "pytest", str(bench_file),
            "-q", "-p", "no:cacheprovider",
            "--benchmark-only",
            f"--benchmark-json={raw_path}",
        ] + (pytest_args or [])
        proc = subprocess.run(cmd, cwd=REPO_ROOT)
        if proc.returncode != 0:
            raise SystemExit(f"benchmark suite failed (pytest exit {proc.returncode})")
        return json.loads(raw_path.read_text(encoding="utf-8"))


def _metric_value(benchmarks: dict, spec) -> float | None:
    """Resolve one side of a derived ratio.

    A plain benchmark name reads that benchmark's mean; a
    ``(name, key)`` pair reads ``extra_info[key]`` — for suites whose
    meaningful number is a measurement the benchmark records rather
    than the wall-clock mean (the shard suite's CPU times).  A numeric
    literal is itself — used as a denominator of 1 to publish a raw
    recorded value (the shard suite's IPC messages per round) through
    the derived table.
    """
    if isinstance(spec, (int, float)):
        return float(spec)
    if isinstance(spec, (list, tuple)):
        name, key = spec
        entry = benchmarks.get(name)
        return entry.get("extra_info", {}).get(key) if entry else None
    entry = benchmarks.get(spec)
    return entry["mean_s"] if entry else None


def distill(raw: dict, suite: str = "substrate") -> dict:
    """Reduce pytest-benchmark's document to the committed schema."""
    benchmarks: dict[str, dict] = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        entry = {
            "mean_s": round(stats["mean"], 9),
            "stddev_s": round(stats["stddev"], 9),
            "rounds": stats["rounds"],
        }
        info = bench.get("extra_info") or {}
        if info:
            entry["extra_info"] = {
                key: round(value, 9) if isinstance(value, float) else value
                for key, value in sorted(info.items())
            }
        benchmarks[bench["name"]] = entry
    derived: dict[str, float] = {}
    for metric, (numerator, denominator) in SUITES[suite]["derived"].items():
        num = _metric_value(benchmarks, numerator)
        den = _metric_value(benchmarks, denominator)
        if num is not None and den is not None and den > 0:
            derived[metric] = round(num / den, 3)
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "benchmarks": dict(sorted(benchmarks.items())),
        "derived": derived,
    }


def aggregate(bench_dir: pathlib.Path) -> dict:
    """Fold every committed ``BENCH_<suite>.json`` into one document.

    Benchmark names and derived metrics are prefixed ``<suite>:`` so
    the result is schema-compatible with a single-suite document — the
    same :func:`compare` gate tracks the whole perf history at once.
    """
    benchmarks: dict[str, dict] = {}
    derived: dict[str, float] = {}
    found = []
    # sorted(): glob yields entries in filesystem order (the DET-012 bug
    # class), which would leak machine-dependent ordering into the
    # committed perf-history document.  Discovery is by filename, not by
    # the SUITES registry, so a committed baseline survives aggregation
    # even when its suite definition has moved on.
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        document = json.loads(path.read_text(encoding="utf-8"))
        if document.get("schema_version") != SCHEMA_VERSION:
            raise SystemExit(
                f"{path.name}: schema_version "
                f"{document.get('schema_version')!r} != {SCHEMA_VERSION}"
            )
        suite = document.get("suite") or path.stem[len("BENCH_"):]
        if suite == "all":
            continue  # never fold a combined document into itself
        found.append(suite)
        for name, entry in document.get("benchmarks", {}).items():
            benchmarks[f"{suite}:{name}"] = entry
        for metric, value in document.get("derived", {}).items():
            derived[f"{suite}:{metric}"] = value
    if not found:
        raise SystemExit(f"no BENCH_*.json baselines under {bench_dir}")
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "all",
        "suites": found,
        "benchmarks": dict(sorted(benchmarks.items())),
        "derived": dict(sorted(derived.items())),
    }


def compare(current: dict, baseline: dict, max_regression: float) -> list[str]:
    """Regressions of ``current`` vs ``baseline`` (empty list = pass).

    A benchmark regresses when its mean slows by more than
    ``max_regression``x.  Benchmarks present on only one side are
    reported informationally but do not fail the comparison (suites
    grow; removals should be deliberate and reviewed).
    """
    failures: list[str] = []
    base_benches = baseline.get("benchmarks", {})
    cur_benches = current.get("benchmarks", {})
    for name, base in sorted(base_benches.items()):
        cur = cur_benches.get(name)
        if cur is None:
            print(f"note: baseline benchmark missing from this run: {name}")
            continue
        if base["mean_s"] <= 0:
            continue
        ratio = cur["mean_s"] / base["mean_s"]
        status = "FAIL" if ratio > max_regression else "ok"
        print(
            f"{status:>4}  {name:<44} {base['mean_s'] * 1e3:9.3f} ms -> "
            f"{cur['mean_s'] * 1e3:9.3f} ms  ({ratio:.2f}x)"
        )
        if ratio > max_regression:
            failures.append(
                f"{name}: {ratio:.2f}x slower than baseline "
                f"(limit {max_regression:.2f}x)"
            )
    for name in sorted(set(cur_benches) - set(base_benches)):
        print(f"note: new benchmark not in baseline: {name}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite", choices=sorted(SUITES) + ["all"], default="substrate",
        help="which benchmark suite to run/distill (default: substrate); "
        "'all' runs nothing and folds the committed BENCH_*.json "
        "baselines into one combined document",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=None,
        help="where to write the distilled JSON (default: stdout)",
    )
    parser.add_argument(
        "--compare", type=pathlib.Path, default=None,
        help="baseline JSON to compare against (exit 1 on regression)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="fail when a benchmark's mean slows by more than this factor",
    )
    parser.add_argument(
        "--from-raw", type=pathlib.Path, default=None,
        help="distill an existing pytest-benchmark JSON instead of running",
    )
    args = parser.parse_args(argv)

    if args.suite == "all":
        if args.from_raw is not None:
            raise SystemExit("--from-raw does not apply to --suite all")
        document = aggregate(BENCH_DIR)
    else:
        raw = (
            json.loads(args.from_raw.read_text(encoding="utf-8"))
            if args.from_raw is not None
            else run_suite(suite=args.suite)
        )
        document = distill(raw, args.suite)
    text = json.dumps(document, indent=2, sort_keys=False) + "\n"
    if args.output is not None:
        args.output.write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text, end="")

    if args.compare is not None:
        baseline = json.loads(args.compare.read_text(encoding="utf-8"))
        if baseline.get("schema_version") != SCHEMA_VERSION:
            raise SystemExit(
                f"baseline schema_version {baseline.get('schema_version')!r} "
                f"!= expected {SCHEMA_VERSION}"
            )
        if baseline.get("suite", args.suite) != args.suite:
            raise SystemExit(
                f"baseline is for suite {baseline.get('suite')!r}, "
                f"not {args.suite!r}"
            )
        failures = compare(document, baseline, args.max_regression)
        if failures:
            for failure in failures:
                print(f"regression: {failure}", file=sys.stderr)
            return 1
        print("benchmark comparison passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
