"""Section 5 crypto-cost calibration: real RSA-512 and ring signatures.

The paper charges 0.5 ms per public-key encryption and 8.5 ms per
decryption (2005-era portable CPU).  These benchmarks measure our actual
primitives so the calibrated cost model can be compared against real
numbers on modern hardware; the *ratio* (decrypt >> encrypt) is the
protocol-relevant shape and is asserted.

The crypto fast path (PR 3) adds cached-vs-uncached pairs: the repeated
hello-verify workload (one ring-signed hello heard by 10 receivers) and
the last-hop-region trapdoor-open workload (10 nodes attempting one
trapdoor), plus the CRT precompute-vs-recompute micro-benchmark.  The
derived ratios land in ``benchmarks/BENCH_crypto.json`` via
``bench_to_json.py --suite crypto`` and are floor-tested in
``tests/test_crypto_cache.py``.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import write_result
from repro.core.aant import AantAuthenticator
from repro.core.config import AantConfig
from repro.core.trapdoor import TrapdoorContents, TrapdoorFactory
from repro.crypto.cache import reset_caches
from repro.crypto.certificates import CertificateAuthority, KeyStore
from repro.crypto.ring_signature import ring_sign, ring_verify
from repro.crypto.rsa import generate_keypair
from repro.geo.vec import Position

_rng = random.Random(42)
_key = generate_keypair(512, _rng)
_pub = _key.public()
_plain = b"src-identity|location|ts"
_cipher = _pub.encrypt(_plain, rng=_rng)
_ring_keys = [generate_keypair(512, _rng) for _ in range(5)]
_ring = [k.public() for k in _ring_keys]
_ring_sig = ring_sign(b"hello", _ring, 2, _ring_keys[2], _rng)

_measured: dict[str, float] = {}


def _record(benchmark, name: str) -> None:
    _measured[name] = benchmark.stats.stats.mean
    benchmark.extra_info["paper_reference_ms"] = {
        "pk_encrypt": 0.5,
        "pk_decrypt": 8.5,
    }


@pytest.mark.benchmark(group="crypto")
def test_rsa512_encrypt(benchmark):
    benchmark(lambda: _pub.encrypt(_plain, rng=_rng))
    _record(benchmark, "encrypt")


@pytest.mark.benchmark(group="crypto")
def test_rsa512_decrypt(benchmark):
    benchmark(lambda: _key.decrypt(_cipher))
    _record(benchmark, "decrypt")
    # The asymmetry the protocol design exploits (open only in the
    # last-hop region): private-key ops cost much more than public-key ops.
    if "encrypt" in _measured:
        assert _measured["decrypt"] > 2 * _measured["encrypt"]
    write_result(
        "crypto_costs",
        "RSA-512 measured vs paper (2005 hardware)\n"
        f"encrypt: {_measured.get('encrypt', 0) * 1000:.4f} ms (paper 0.5 ms)\n"
        f"decrypt: {_measured.get('decrypt', 0) * 1000:.4f} ms (paper 8.5 ms)",
    )


@pytest.mark.benchmark(group="crypto")
def test_rsa512_sign(benchmark):
    benchmark(lambda: _key.sign(b"message"))


@pytest.mark.benchmark(group="crypto")
def test_rsa512_verify(benchmark):
    signature = _key.sign(b"message")
    benchmark(lambda: _pub.verify(b"message", signature))


@pytest.mark.benchmark(group="crypto")
def test_rsa512_keygen(benchmark):
    keygen_rng = random.Random(7)
    benchmark.pedantic(lambda: generate_keypair(512, keygen_rng), rounds=3, iterations=1)


@pytest.mark.benchmark(group="crypto")
def test_ring_sign_k4(benchmark):
    benchmark(lambda: ring_sign(b"hello", _ring, 2, _ring_keys[2], _rng))


@pytest.mark.benchmark(group="crypto")
def test_ring_verify_k4(benchmark):
    result = benchmark(lambda: ring_verify(b"hello", _ring, _ring_sig))
    assert result


@pytest.mark.benchmark(group="crypto")
def test_trapdoor_seal_and_open_real(benchmark):
    factory = TrapdoorFactory("real", rng=_rng, cache_mode="off")
    contents = TrapdoorContents("node-1", Position(10, 20), 1.0)

    def roundtrip():
        trapdoor, _ = factory.seal("dest", _pub, contents)
        opened, _ = factory.try_open(trapdoor, "dest", _key)
        return opened

    assert benchmark(roundtrip) is not None


# ---------------------------------------------------------------------------
# Crypto fast path: cached vs uncached (PR 3)
# ---------------------------------------------------------------------------
# One PKI shared by all fast-path benchmarks: a CA, 11 enrolled nodes
# (1 signer + 10 receivers), everyone's certificate pre-shared.
_fp_rng = random.Random(2025)
_ca = CertificateAuthority(rng=_fp_rng)
_stores: list[KeyStore] = []
for _i in range(11):
    _node_key, _node_cert = _ca.enroll(f"node-{_i}")
    _stores.append(KeyStore(f"node-{_i}", _node_key, _node_cert))
for _store in _stores:
    _store.add_all(s.certificate for s in _stores)

_RING_K = 4  # 4 decoys + signer = ring size 5 (the acceptance workload)
_signer = AantAuthenticator(
    AantConfig(ring_size=_RING_K), mode="real",
    keystore=_stores[0], ca=_ca, rng=_fp_rng,
)
_hello_args = (b"\x0a" * 6, Position(100.0, 50.0), 7.0)
_attachment, _ = _signer.sign_hello(*_hello_args)

_sealed_contents = TrapdoorContents("node-0", Position(100.0, 50.0), 7.0)
_sealer = TrapdoorFactory("real", rng=_fp_rng, cache_mode="off")
_region_trapdoor, _ = _sealer.seal(
    "node-5", _stores[5].certificate.public_key, _sealed_contents
)


def _receivers(cache_mode: str) -> list[AantAuthenticator]:
    return [
        AantAuthenticator(
            AantConfig(ring_size=_RING_K), mode="real",
            keystore=_stores[i], ca=_ca, cache_mode=cache_mode,
        )
        for i in range(1, 11)
    ]


@pytest.mark.benchmark(group="crypto-fast-path")
@pytest.mark.parametrize("cache_mode", ["off", "on"])
def test_hello_verify_ring5_10_receivers(benchmark, cache_mode):
    """The broadcast-verify hot path: one ring-signed hello (ring size 5)
    verified by 10 distinct receivers.  'off' recomputes 10x(5 cert
    verifies + 1 ring verify); 'on' collapses them to memo lookups after
    the first receiver.  Charged virtual-time delays are identical either
    way — only the wall clock changes, which is what this pair measures."""
    reset_caches()
    _ca.cache_mode = cache_mode
    verifiers = _receivers(cache_mode)

    def verify_all() -> int:
        valid_count = 0
        for verifier in verifiers:
            valid, _delay = verifier.verify_hello(_attachment, *_hello_args)
            valid_count += valid
        return valid_count

    try:
        assert benchmark(verify_all) == 10
    finally:
        _ca.cache_mode = "on"


@pytest.mark.benchmark(group="crypto-fast-path")
@pytest.mark.parametrize("cache_mode", ["off", "on"])
def test_trapdoor_open_region10(benchmark, cache_mode):
    """The last-hop-region open: 10 nodes attempt the same trapdoor (9
    negative opens + the destination).  Negative results memoize too —
    the common case the paper's 8.5 ms decrypt charge exists for."""
    reset_caches()
    factory = TrapdoorFactory("real", rng=_fp_rng, cache_mode=cache_mode)

    def open_region() -> int:
        opened = 0
        for i in range(1, 11):
            contents, _delay = factory.try_open(
                _region_trapdoor, f"node-{i}", _stores[i].private_key
            )
            opened += contents is not None
        return opened

    assert benchmark(open_region) == 1


def _apply_recomputing_crt(key, value: int) -> int:
    """The pre-PR ``RsaPrivateKey.apply`` body: CRT parameters derived
    inside every call (kept here as the micro-benchmark's baseline)."""
    dp = key.d % (key.p - 1)
    dq = key.d % (key.q - 1)
    q_inv = pow(key.q, -1, key.p)
    m1 = pow(value % key.p, dp, key.p)
    m2 = pow(value % key.q, dq, key.q)
    h = (q_inv * (m1 - m2)) % key.p
    return m2 + h * key.q


@pytest.mark.benchmark(group="crypto-fast-path")
@pytest.mark.parametrize("variant", ["recompute", "precomputed"])
def test_rsa512_private_apply(benchmark, variant):
    """CRT hoisting micro-benchmark: one-time dp/dq/q_inv at construction
    vs the old per-call recomputation (satellite fix)."""
    value = 0x1234567890ABCDEF
    if variant == "precomputed":
        result = benchmark(lambda: _key.apply(value))
    else:
        result = benchmark(lambda: _apply_recomputing_crt(_key, value))
    assert result == pow(value, _key.d, _key.n)
