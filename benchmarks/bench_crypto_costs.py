"""Section 5 crypto-cost calibration: real RSA-512 and ring signatures.

The paper charges 0.5 ms per public-key encryption and 8.5 ms per
decryption (2005-era portable CPU).  These benchmarks measure our actual
primitives so the calibrated cost model can be compared against real
numbers on modern hardware; the *ratio* (decrypt >> encrypt) is the
protocol-relevant shape and is asserted.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import write_result
from repro.crypto.ring_signature import ring_sign, ring_verify
from repro.crypto.rsa import generate_keypair

_rng = random.Random(42)
_key = generate_keypair(512, _rng)
_pub = _key.public()
_plain = b"src-identity|location|ts"
_cipher = _pub.encrypt(_plain, rng=_rng)
_ring_keys = [generate_keypair(512, _rng) for _ in range(5)]
_ring = [k.public() for k in _ring_keys]
_ring_sig = ring_sign(b"hello", _ring, 2, _ring_keys[2], _rng)

_measured: dict[str, float] = {}


def _record(benchmark, name: str) -> None:
    _measured[name] = benchmark.stats.stats.mean
    benchmark.extra_info["paper_reference_ms"] = {
        "pk_encrypt": 0.5,
        "pk_decrypt": 8.5,
    }


@pytest.mark.benchmark(group="crypto")
def test_rsa512_encrypt(benchmark):
    benchmark(lambda: _pub.encrypt(_plain, rng=_rng))
    _record(benchmark, "encrypt")


@pytest.mark.benchmark(group="crypto")
def test_rsa512_decrypt(benchmark):
    benchmark(lambda: _key.decrypt(_cipher))
    _record(benchmark, "decrypt")
    # The asymmetry the protocol design exploits (open only in the
    # last-hop region): private-key ops cost much more than public-key ops.
    if "encrypt" in _measured:
        assert _measured["decrypt"] > 2 * _measured["encrypt"]
    write_result(
        "crypto_costs",
        "RSA-512 measured vs paper (2005 hardware)\n"
        f"encrypt: {_measured.get('encrypt', 0) * 1000:.4f} ms (paper 0.5 ms)\n"
        f"decrypt: {_measured.get('decrypt', 0) * 1000:.4f} ms (paper 8.5 ms)",
    )


@pytest.mark.benchmark(group="crypto")
def test_rsa512_sign(benchmark):
    benchmark(lambda: _key.sign(b"message"))


@pytest.mark.benchmark(group="crypto")
def test_rsa512_verify(benchmark):
    signature = _key.sign(b"message")
    benchmark(lambda: _pub.verify(b"message", signature))


@pytest.mark.benchmark(group="crypto")
def test_rsa512_keygen(benchmark):
    keygen_rng = random.Random(7)
    benchmark.pedantic(lambda: generate_keypair(512, keygen_rng), rounds=3, iterations=1)


@pytest.mark.benchmark(group="crypto")
def test_ring_sign_k4(benchmark):
    benchmark(lambda: ring_sign(b"hello", _ring, 2, _ring_keys[2], _rng))


@pytest.mark.benchmark(group="crypto")
def test_ring_verify_k4(benchmark):
    result = benchmark(lambda: ring_verify(b"hello", _ring, _ring_sig))
    assert result


@pytest.mark.benchmark(group="crypto")
def test_trapdoor_seal_and_open_real(benchmark):
    from repro.core.trapdoor import TrapdoorContents, TrapdoorFactory
    from repro.geo.vec import Position

    factory = TrapdoorFactory("real", rng=_rng)
    contents = TrapdoorContents("node-1", Position(10, 20), 1.0)

    def roundtrip():
        trapdoor, _ = factory.seal("dest", _pub, contents)
        opened, _ = factory.try_open(trapdoor, "dest", _key)
        return opened

    assert benchmark(roundtrip) is not None
