"""Sharded-execution benchmarks: the PR 8 tentpole priced end to end.

Not a paper table — these price ``repro.sim.shard`` on its home turf:
a clustered "community model" arena (``placement="clusters"`` with
local traffic via ``flow_locality``) whose radio-silent corridors
between communities are exactly what the conservative-window protocol
exploits.  One benchmark family, two legs per size:

* ``engine`` — the single-engine run, with the CPU seconds of
  ``Scenario.run`` recorded in ``extra_info["cpu_seconds"]``.
* ``shards4`` — the same scenario at ``shard_mode="on"``/4 shards, with
  ``extra_info`` carrying the driver's ``critical_path_seconds`` (the
  per-round maximum of worker CPU time — the run's wall-clock on a
  machine with one core per shard) and ``busy_seconds_total``.

``bench_to_json.py --suite shard`` derives
``shard4_speedup_<n>_nodes = engine cpu_seconds / shards4
critical_path_seconds`` at each size.  The acceptance floor —
**>= 2x at 600 nodes** — is pinned against the committed
``BENCH_shard.json`` by ``tests/test_shard_equivalence.py``.

CPU time, not wall time, on both sides: the container this baseline
ships from has a single core, so four forked workers time-slice it and
every wall measurement of the sharded leg degenerates to the busy sum.
``critical_path_seconds`` is the honest parallel number — each round
costs its slowest shard — and the engine leg uses ``process_time`` so
the ratio compares like with like.

The scaling curve is deliberately not flattering everywhere: cluster
counts are multiples of the shard count so partition borders fall in
the empty corridors (the partition-friendly case sharding is *for*);
at 150 nodes the per-round synchronization still eats most of the win,
and the uniform paper arena — saturated, every fan-out atomic in one
shard — stays below 1x at any size.  See DESIGN.md "Sharded execution".
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.scenario import Scenario, ScenarioConfig, run_scenario

#: Distance between community center lines.  At 400 m cluster half-width
#: the corridors between communities dwarf every lookahead bound (ghost
#: mirroring, exposure pads, the hop-chain ladder), so windows open to
#: the conservative maximum.
CLUSTER_PITCH = 70_000.0

#: Communities per size — multiples of 4 so the 4-shard partition
#: borders land between clusters, never through one (a border bisecting
#: a community ghosts every frame it sends and collapses the window).
NUM_CLUSTERS = {150: 4, 600: 8, 2000: 24}


def _config(num_nodes: int, shard_mode: str = "off", shards: int = 1) -> ScenarioConfig:
    clusters = NUM_CLUSTERS[num_nodes]
    return ScenarioConfig(
        protocol="agfw",
        num_nodes=num_nodes,
        width=CLUSTER_PITCH * clusters,
        height=300.0,
        sim_time=0.2,
        seed=1,
        num_flows=num_nodes,
        num_senders=num_nodes,
        rate_pps=20.0,
        traffic_start=(0.02, 0.06),
        placement="clusters",
        num_clusters=clusters,
        cluster_radius=400.0,
        flow_locality=900.0,
        shard_mode=shard_mode,
        shards=shards,
    )


@pytest.mark.benchmark(group="shard")
@pytest.mark.parametrize("num_nodes", [150, 600, 2000])
@pytest.mark.parametrize("mode", ["engine", "shards4"])
def test_shard_scenario(benchmark, mode, num_nodes):
    if mode == "engine":
        cpus: list[float] = []

        def setup():
            return (Scenario(_config(num_nodes)),), {}

        def run(scenario):
            started = time.process_time()
            result = scenario.run()
            cpus.append(time.process_time() - started)
            return result

        result = benchmark.pedantic(run, setup=setup, rounds=2)
        benchmark.extra_info["cpu_seconds"] = round(min(cpus), 6)
    else:
        stats: list[dict] = []

        def run4():
            result = run_scenario(_config(num_nodes, shard_mode="on", shards=4))
            stats.append(result.shard_stats)
            return result

        result = benchmark.pedantic(run4, rounds=2)
        best = min(stats, key=lambda s: s["critical_path_seconds"])
        benchmark.extra_info["critical_path_seconds"] = round(
            best["critical_path_seconds"], 6
        )
        benchmark.extra_info["busy_seconds_total"] = round(
            best["busy_seconds_total"], 6
        )
        benchmark.extra_info["sync_rounds"] = best["rounds"]
        benchmark.extra_info["shards"] = best["shards"]
    assert result.delivered > 0
