"""Sharded-execution benchmarks: the PR 8 tentpole priced end to end.

Not a paper table — these price ``repro.sim.shard`` on its home turf:
a clustered "community model" arena (``placement="clusters"`` with
local traffic via ``flow_locality``) whose radio-silent corridors
between communities are exactly what the conservative-window protocol
exploits.  One benchmark family, two legs per size:

* ``engine`` — the single-engine run, with the CPU seconds of
  ``Scenario.run`` recorded in ``extra_info["cpu_seconds"]``.
* ``shards4`` / ``shards8`` — the same scenario at ``shard_mode="on"``
  (4 shards up to 2000 nodes, 8 at 10000), with ``extra_info`` carrying
  the driver's ``critical_path_seconds`` (the per-round maximum of
  worker CPU time — the run's wall-clock on a machine with one core per
  shard), ``busy_seconds_total``, and the PR 9 IPC economy counters:
  ``ipc_messages``, ``ipc_bytes``, ``ipc_messages_per_round``, and
  ``promise_rounds`` (steady-state promise exchanges per window — 1
  with piggybacking, 2 with the legacy split rounds).

``bench_to_json.py --suite shard`` derives
``shard4_speedup_<n>_nodes = engine cpu_seconds / shards4
critical_path_seconds`` at each size (``shard8_speedup_10000_nodes``
at the top end) plus ``shard4_ipc_messages_per_round_2000_nodes``.
The acceptance floors — **>= 2x at 600 nodes**, **>= 4x at 10000
nodes/8 shards**, and **<= 8 IPC messages per round** at 2000 nodes/4
shards (piggybacking halves the legacy 4·shards) — are pinned against
the committed ``BENCH_shard.json`` by ``tests/test_shard_equivalence.py``.

CPU time, not wall time, on both sides: the container this baseline
ships from has a single core, so four forked workers time-slice it and
every wall measurement of the sharded leg degenerates to the busy sum.
``critical_path_seconds`` is the honest parallel number — each round
costs its slowest shard — and the engine leg uses ``process_time`` so
the ratio compares like with like.

The scaling curve is deliberately not flattering everywhere: cluster
counts are multiples of the shard count so partition borders fall in
the empty corridors (the partition-friendly case sharding is *for*);
at 150 nodes the per-round synchronization still eats most of the win,
and the uniform paper arena — saturated, every fan-out atomic in one
shard — stays below 1x at any size.  See DESIGN.md "Sharded execution".
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.scenario import Scenario, ScenarioConfig, run_scenario

#: Distance between community center lines.  At 400 m cluster half-width
#: the corridors between communities dwarf every lookahead bound (ghost
#: mirroring, exposure pads, the hop-chain ladder), so windows open to
#: the conservative maximum.
CLUSTER_PITCH = 70_000.0

#: Communities per size — multiples of the shard count so partition
#: borders land between clusters, never through one (a border bisecting
#: a community ghosts every frame it sends and collapses the window).
#: 10000 runs at 8 shards, so its count is a multiple of 8.
NUM_CLUSTERS = {150: 4, 600: 8, 2000: 24, 10000: 120}


def _config(num_nodes: int, shard_mode: str = "off", shards: int = 1) -> ScenarioConfig:
    clusters = NUM_CLUSTERS[num_nodes]
    return ScenarioConfig(
        protocol="agfw",
        num_nodes=num_nodes,
        width=CLUSTER_PITCH * clusters,
        height=300.0,
        sim_time=0.2,
        seed=1,
        num_flows=num_nodes,
        num_senders=num_nodes,
        rate_pps=20.0,
        traffic_start=(0.02, 0.06),
        placement="clusters",
        num_clusters=clusters,
        cluster_radius=400.0,
        flow_locality=900.0,
        shard_mode=shard_mode,
        shards=shards,
    )


@pytest.mark.benchmark(group="shard")
@pytest.mark.parametrize(
    "mode,num_nodes",
    [
        ("engine", 150),
        ("shards4", 150),
        ("engine", 600),
        ("shards4", 600),
        ("engine", 2000),
        ("shards4", 2000),
        # The 10k point runs once per leg (a single-core container
        # time-slices eight workers; two rounds would double a
        # multi-minute benchmark for no extra signal) and at 8 shards,
        # where the PR 9 scale-up work — piggybacked promise rounds,
        # the shared position plane, slim keyed queues — has to clear
        # the >= 4x critical-path floor.
        ("engine", 10000),
        ("shards8", 10000),
    ],
)
def test_shard_scenario(benchmark, mode, num_nodes):
    rounds = 1 if num_nodes >= 10000 else 2
    if mode == "engine":
        cpus: list[float] = []

        def setup():
            return (Scenario(_config(num_nodes)),), {}

        def run(scenario):
            started = time.process_time()
            result = scenario.run()
            cpus.append(time.process_time() - started)
            return result

        result = benchmark.pedantic(run, setup=setup, rounds=rounds)
        benchmark.extra_info["cpu_seconds"] = round(min(cpus), 6)
    else:
        shards = int(mode.removeprefix("shards"))
        stats: list[dict] = []

        def run_sharded():
            result = run_scenario(
                _config(num_nodes, shard_mode="on", shards=shards)
            )
            stats.append(result.shard_stats)
            return result

        result = benchmark.pedantic(run_sharded, rounds=rounds)
        best = min(stats, key=lambda s: s["critical_path_seconds"])
        benchmark.extra_info["critical_path_seconds"] = round(
            best["critical_path_seconds"], 6
        )
        benchmark.extra_info["busy_seconds_total"] = round(
            best["busy_seconds_total"], 6
        )
        benchmark.extra_info["sync_rounds"] = best["rounds"]
        benchmark.extra_info["shards"] = best["shards"]
        benchmark.extra_info["promise_rounds"] = best["promise_rounds"]
        benchmark.extra_info["ipc_messages"] = best["ipc_messages"]
        benchmark.extra_info["ipc_bytes"] = best["ipc_bytes"]
        benchmark.extra_info["ipc_messages_per_round"] = round(
            best["ipc_messages_per_round"], 6
        )
    assert result.delivered > 0
