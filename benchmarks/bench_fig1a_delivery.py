"""Figure 1(a): packet delivery fraction vs node density.

Regenerates the paper's delivery-fraction series for GPSR-Greedy, AGFW
(with network-layer ACK) and AGFW-noACK over the density sweep, at a
benchmark-friendly horizon (the shapes, not NS-2's absolute numbers, are
the reproduction target — see EXPERIMENTS.md).

Each benchmark measures one scheme's full density series; the combined
table is written to ``benchmarks/results/fig1a.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.experiments.fig1 import Fig1Point, format_fig1a, run_fig1

NODE_COUNTS = (50, 112, 150)
SIM_TIME = 12.0
SEED = 3

_collected: dict[str, list[Fig1Point]] = {}


def _run_scheme(scheme: str) -> list[Fig1Point]:
    points = run_fig1(
        node_counts=NODE_COUNTS, schemes=(scheme,), sim_time=SIM_TIME, seed=SEED
    )
    _collected[scheme] = points
    return points


@pytest.mark.benchmark(group="fig1a")
def test_fig1a_gpsr_greedy(benchmark):
    points = benchmark.pedantic(_run_scheme, args=("gpsr",), rounds=1, iterations=1)
    benchmark.extra_info["pdf_by_density"] = {
        p.num_nodes: round(p.delivery_fraction, 3) for p in points
    }
    assert all(p.delivery_fraction > 0.8 for p in points)


@pytest.mark.benchmark(group="fig1a")
def test_fig1a_agfw_ack(benchmark):
    points = benchmark.pedantic(_run_scheme, args=("agfw",), rounds=1, iterations=1)
    benchmark.extra_info["pdf_by_density"] = {
        p.num_nodes: round(p.delivery_fraction, 3) for p in points
    }
    # Paper: "AGFW with ACK capability has almost same performance as the
    # original GPSR-Greedy."
    assert all(p.delivery_fraction > 0.9 for p in points)


@pytest.mark.benchmark(group="fig1a")
def test_fig1a_agfw_noack(benchmark):
    points = benchmark.pedantic(_run_scheme, args=("agfw-noack",), rounds=1, iterations=1)
    benchmark.extra_info["pdf_by_density"] = {
        p.num_nodes: round(p.delivery_fraction, 3) for p in points
    }
    # Paper: the no-ACK ablation's "delivery fraction is not satisfactory".
    table = write_result(
        "fig1a", format_fig1a([p for pts in _collected.values() for p in pts])
    )
    assert table.exists()
    if "gpsr" in _collected and "agfw" in _collected:
        for noack in points:
            gpsr = next(
                p for p in _collected["gpsr"] if p.num_nodes == noack.num_nodes
            )
            ack = next(
                p for p in _collected["agfw"] if p.num_nodes == noack.num_nodes
            )
            assert noack.delivery_fraction <= ack.delivery_fraction + 0.01
            assert abs(ack.delivery_fraction - gpsr.delivery_fraction) < 0.1
