"""Sections 3.3 & 5: ALS vs DLM message/byte/crypto overhead.

The paper expects ALS "to be similar to the original location service
... one might also expect it to elegantly degrade a bit" — with the
admitted caveat that an updater pushes one encrypted entry per
anticipated sender.  This bench runs the identical lookup workload over
both services and regenerates the comparison table.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.experiments.overhead import (
    format_location_service_comparison,
    run_location_service_comparison,
)

NUM_NODES = 40
NUM_LOOKUPS = 8
SENDERS_PER_NODE = 5


@pytest.mark.benchmark(group="als")
def test_als_vs_dlm_overhead(benchmark):
    reports = benchmark.pedantic(
        run_location_service_comparison,
        kwargs=dict(
            num_nodes=NUM_NODES,
            num_lookups=NUM_LOOKUPS,
            senders_per_node=SENDERS_PER_NODE,
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )
    write_result("als_vs_dlm", format_location_service_comparison(reports))
    dlm = next(r for r in reports if r.service == "dlm")
    als = next(r for r in reports if r.service == "als")
    # Functionality is preserved...
    assert als.lookups_answered >= NUM_LOOKUPS // 2
    # ...at a cost: more messages (one per anticipated sender per update)
    # and cryptographic work DLM never does.
    assert als.messages > dlm.messages
    assert als.bytes > dlm.bytes
    assert als.crypto_ops > 0 and dlm.crypto_ops == 0
    benchmark.extra_info["als_over_dlm_bytes"] = round(als.bytes / dlm.bytes, 1)


@pytest.mark.benchmark(group="als")
def test_als_no_index_variant_costs_more(benchmark):
    """The paper's alternative (no index in LREQ) trades bandwidth for
    requester-index privacy: replies carry whole ciphertext sets."""

    def run():
        with_index = run_location_service_comparison(
            num_nodes=30, num_lookups=5, senders_per_node=4, seed=13,
            include_index=True,
        )[1]
        without_index = run_location_service_comparison(
            num_nodes=30, num_lookups=5, senders_per_node=4, seed=13,
            include_index=False,
        )[1]
        return with_index, without_index

    with_index, without_index = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "als_index_variant",
        "ALS index vs no-index (paper's alternative scheme)\n"
        f"bytes with index:    {with_index.bytes}\n"
        f"bytes without index: {without_index.bytes}\n"
        f"crypto ops with index:    {with_index.crypto_ops}\n"
        f"crypto ops without index: {without_index.crypto_ops}",
    )
    # "As a trade of anonymity, the communication and computation
    # overhead increase."
    assert without_index.crypto_ops >= with_index.crypto_ops
