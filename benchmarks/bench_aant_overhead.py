"""Section 4: AANT byte-overhead and crypto cost vs ring size k.

The paper's trade-off: "the larger the set of ambiguous signers is used,
the stronger the anonymity the sender has, but with more certificates to
transmit."  This bench regenerates the overhead table from the cost
model, cross-checks the ring-signature wire size against the *real* RST
implementation, and times real signing/verification at several k.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import write_result
from repro.crypto.ring_signature import ring_sign, ring_verify
from repro.crypto.rsa import generate_keypair
from repro.experiments.overhead import aant_overhead_table, format_aant_overhead

_rng = random.Random(21)
_keys = [generate_keypair(512, _rng) for _ in range(17)]


def _ring(members: int):
    return [k.public() for k in _keys[:members]]


@pytest.mark.benchmark(group="aant")
def test_aant_overhead_table(benchmark):
    rows = benchmark(aant_overhead_table)
    text = format_aant_overhead(rows)
    # Cross-check the model against the real implementation at k = 4:
    # 84-byte domain elements x (members + 1).
    signature = ring_sign(b"x", _ring(5), 0, _keys[0], _rng)
    model_bytes = rows[2].hello_bytes_with_certs  # k=4 row
    text += (
        f"\n\nreal RST signature bytes at k=4: {signature.byte_size()}"
        f" (model: {84 * 6})"
    )
    write_result("aant_overhead", text)
    assert signature.byte_size() == 84 * 6
    # Monotone: more decoys, more bytes, strictly.
    sizes = [r.hello_bytes_with_certs for r in rows]
    assert sizes == sorted(sizes) and len(set(sizes)) == len(sizes)
    assert model_bytes > rows[0].hello_bytes_with_certs


@pytest.mark.benchmark(group="aant")
@pytest.mark.parametrize("k", [1, 4, 8, 16])
def test_ring_sign_scaling(benchmark, k):
    ring = _ring(k + 1)
    benchmark(lambda: ring_sign(b"hello", ring, 0, _keys[0], _rng))
    benchmark.extra_info["ring_members"] = k + 1


@pytest.mark.benchmark(group="aant")
@pytest.mark.parametrize("k", [1, 4, 8, 16])
def test_ring_verify_scaling(benchmark, k):
    ring = _ring(k + 1)
    signature = ring_sign(b"hello", ring, 0, _keys[0], _rng)
    assert benchmark(lambda: ring_verify(b"hello", ring, signature))
    benchmark.extra_info["ring_members"] = k + 1
