"""Static-analysis benchmarks: what a whole-tree lint costs.

Not a paper table — these price the :mod:`repro.analysis` engine so the
CI gate stays cheap enough to run on every push:

* ``test_full_src_analysis`` — one full ``src/`` analysis per mode.
  The ``intra`` leg is PR 1's per-module walk; the ``interproc`` leg
  adds the project pre-pass (symbol table, call graph, taint summaries
  for both seed families, determinism facts).  ``bench_to_json.py
  --suite analysis`` derives ``interproc_overhead`` — the price of
  cross-module reasoning, which the acceptance criteria cap via the
  committed baseline comparison.
* ``test_full_src_analysis_cached`` — the incremental path: ``cold``
  analyzes with an empty cache, ``warm`` re-runs against the cache the
  setup populated.  Parsing and fact construction always run (they are
  the cache key), so the derived ``incremental_cache_speedup`` prices
  exactly the skipped rule dispatch.
"""

from __future__ import annotations

import pathlib
import shutil

import pytest

from repro.analysis.engine import analyze_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")


@pytest.mark.benchmark(group="analysis")
@pytest.mark.parametrize("mode", ["intra", "interproc"])
def test_full_src_analysis(benchmark, mode):
    def run():
        return analyze_paths([SRC], interprocedural=(mode == "interproc"))

    result = benchmark.pedantic(run, rounds=3)
    assert result.errors == []
    assert result.files_analyzed > 50


@pytest.mark.benchmark(group="analysis")
@pytest.mark.parametrize("state", ["cold", "warm"])
def test_full_src_analysis_cached(benchmark, state, tmp_path):
    cache_dir = tmp_path / "cache"
    warm_cache = tmp_path / "warm.json"
    if state == "warm":
        analyze_paths([SRC], cache_path=warm_cache)  # populate once

    def setup():
        shutil.rmtree(cache_dir, ignore_errors=True)
        cache_dir.mkdir()
        cache_path = cache_dir / "cache.json"
        if state == "warm":
            shutil.copy(warm_cache, cache_path)
        return (cache_path,), {}

    def run(cache_path):
        return analyze_paths([SRC], cache_path=cache_path)

    result = benchmark.pedantic(run, setup=setup, rounds=3)
    assert result.errors == []
    if state == "warm":
        assert result.cache_misses == 0
        assert result.cache_hits == result.files_analyzed
    else:
        assert result.cache_hits == 0
