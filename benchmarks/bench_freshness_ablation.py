"""Ablation: the Section 3.1.1 multiple-entry problem, quantified.

"A snapshot of ANT at certain moment may have more than one entry for
the same neighbor ... multiple-entry may lead to ineffective forwarding
decision", which the paper fixes by weighing freshness into the choice.

This bench runs AGFW-noACK (where a stale pick is an unrecoverable loss)
under both strategies.  ``best_position`` routinely selects entries
whose pseudonym the owner has already rotated out, collapsing delivery;
``freshest_progress`` restores it — the paper's design argument as a
measured effect.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.experiments.scenario import ScenarioConfig, run_scenario

_results: dict[str, float] = {}


def _run(strategy: str, protocol: str = "agfw-noack") -> float:
    result = run_scenario(
        ScenarioConfig(
            protocol=protocol,
            num_nodes=100,
            sim_time=12.0,
            traffic_start=(1.0, 3.0),
            seed=23,
            agfw_overrides={"next_hop_strategy": strategy},
        )
    )
    return result.delivery_fraction


@pytest.mark.benchmark(group="freshness")
def test_noack_best_position(benchmark):
    pdf = benchmark.pedantic(_run, args=("best_position",), rounds=1, iterations=1)
    _results["best_position"] = pdf
    benchmark.extra_info["delivery_fraction"] = round(pdf, 3)


@pytest.mark.benchmark(group="freshness")
def test_noack_freshest_progress(benchmark):
    pdf = benchmark.pedantic(_run, args=("freshest_progress",), rounds=1, iterations=1)
    _results["freshest_progress"] = pdf
    benchmark.extra_info["delivery_fraction"] = round(pdf, 3)
    write_result(
        "freshness_ablation",
        "AGFW-noACK delivery fraction by next-hop strategy (100 nodes)\n"
        + "\n".join(f"{k:>18}: {v:.3f}" for k, v in _results.items()),
    )
    if "best_position" in _results:
        # Freshness-aware forwarding must clearly beat the naive rule.
        assert pdf > _results["best_position"] + 0.1
