#!/usr/bin/env python3
"""Location-privacy audit: what an adversary learns, GPSR vs AGFW.

Runs the paper's workload (mobile nodes, CBR flows) twice — once under
plain GPSR and once under the anonymous scheme — with a field-wide
coalition of passive sniffers, then reports the adversary's yield:
identity-location doublets, per-victim tracking coverage, and the
residual route traceability the paper concedes.

Run:  python examples/location_privacy_audit.py [--nodes 50] [--time 60]
"""

from __future__ import annotations

import argparse

from repro.adversary import DoubletTracker, RouteTracer
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.experiments.security import format_exposure, run_exposure_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=50)
    parser.add_argument("--time", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--victim", default="node-1", help="identity to track")
    args = parser.parse_args()

    reports = run_exposure_experiment(
        sim_time=args.time, num_nodes=args.nodes, seed=args.seed
    )
    print(format_exposure(reports))

    # Zoom in on one victim under GPSR: reconstruct its movement history.
    print(f"\n--- tracking '{args.victim}' under GPSR ---")
    scenario = Scenario(
        ScenarioConfig(
            protocol="gpsr",
            num_nodes=args.nodes,
            sim_time=min(args.time, 30.0),
            seed=args.seed,
            with_sniffer=True,
            traffic_start=(1.0, 5.0),
        )
    )
    scenario.run()
    tracker = DoubletTracker()
    tracker.ingest(scenario.sniffer.observations)
    fixes = tracker.doublets_for(args.victim)
    print(f"{len(fixes)} location fixes captured; first five:")
    for doublet in fixes[:5]:
        x, y = doublet.location
        print(f"  t={doublet.time:6.2f}s  ({x:7.1f}, {y:6.1f})  from {doublet.source}")
    coverage = tracker.tracking_coverage(
        args.victim, duration=scenario.config.sim_time, horizon=5.0
    )
    print(f"tracking coverage (5 s horizon): {coverage:.1%}")

    # The same attack under AGFW: routes visible, identities gone.
    print("\n--- the same adversary under AGFW ---")
    scenario = Scenario(
        ScenarioConfig(
            protocol="agfw",
            num_nodes=args.nodes,
            sim_time=min(args.time, 30.0),
            seed=args.seed,
            with_sniffer=True,
            traffic_start=(1.0, 5.0),
        )
    )
    scenario.run()
    tracker = DoubletTracker()
    tracker.ingest(scenario.sniffer.observations)
    routes = RouteTracer()
    routes.ingest(scenario.sniffer.observations)
    print(f"doublets captured: {len(tracker.doublets)}")
    print(f"pseudonym sightings (unlinkable): {tracker.pseudonym_sightings}")
    print(f"data routes reconstructable: {len(routes.routes())} "
          f"(identities learned from them: {routes.identities_learned()})")


if __name__ == "__main__":
    main()
