#!/usr/bin/env python3
"""ALS walkthrough: Algorithm 3.3 end to end, with real cryptography.

Builds a static field running the anonymous routing stack plus the
Anonymous Location Service.  Node A (the updater) pushes encrypted
location entries for its anticipated senders to its server grid; node B
(the requester) resolves A's location without revealing its own
identity to the server, relays, or eavesdroppers; the location server
itself stores only ciphertext it cannot read.

Run:  python examples/anonymous_location_service.py [--real-crypto]
"""

from __future__ import annotations

import argparse
import random

from repro.core import AgfwConfig, AgfwRouter
from repro.core.als import AlsAgent, AlsConfig
from repro.crypto import CertificateAuthority, KeyStore
from repro.geo import Grid, Position, Region
from repro.location import OracleLocationService
from repro.net import Node, RadioMedium, StaticMobility
from repro.sim import RngRegistry, Simulator, Tracer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--real-crypto", action="store_true",
                        help="run actual RSA instead of the calibrated cost model")
    parser.add_argument("--nodes", type=int, default=30)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()
    mode = "real" if args.real_crypto else "modeled"

    sim = Simulator()
    tracer = Tracer(keep=False)
    medium = RadioMedium(sim, tracer)
    region = Region.of_size(1500.0, 300.0)
    grid = Grid(region, 5, 1)
    rngs = RngRegistry(args.seed)
    oracle = OracleLocationService(sim)  # bootstrap only; ALS replaces it

    # A connected lattice with jitter so every grid cell is inhabited.
    rng = random.Random(args.seed)
    nodes = []
    for i in range(args.nodes):
        x = min((i % 10) * 150.0 + rng.uniform(0, 60), 1499.0)
        y = min((i // 10) * 100.0 + rng.uniform(0, 60), 299.0)
        node = Node(sim, i, medium, StaticMobility(Position(x, y)), rngs, tracer)
        node.attach_router(AgfwRouter(node, oracle, AgfwConfig(), tracer))
        nodes.append(node)
    oracle.register_all(nodes)

    if mode == "real":
        print("provisioning PKI (offline CA, per-node RSA-512 keys)...")
        ca = CertificateAuthority(rng=rngs.stream("ca"))
        stores = []
        for node in nodes:
            key, cert = ca.enroll(node.identity)
            stores.append(KeyStore(node.identity, key, cert))
        certs = [s.certificate for s in stores]
        for node, store in zip(nodes, stores):
            store.add_all(certs)
            node.keystore = store

    agents = [
        AlsAgent(node, node.router, grid, AlsConfig(update_interval=5.0), mode=mode)
        for node in nodes
    ]
    updater, requester = nodes[20], nodes[5]
    # The paper's limitation, explicit: A must anticipate its senders.
    agents[20].potential_senders = [requester.identity, nodes[7].identity]

    for node in nodes:
        node.start()
    for agent in agents:
        agent.start()
    sim.run(until=12.0)

    home = grid.home_cells(updater.identity, 1)[0]
    print(f"\nupdater  {updater.identity} at {updater.position}")
    print(f"server grid for {updater.identity}: cell {home} "
          f"(center {grid.center_of(home)})")
    holders = [a for a in agents if a.store]
    print(f"nodes currently acting as location servers: "
          f"{sorted(a.node.node_id for a in holders)}")
    sample = next(a for a in holders)
    print(f"what a server stores (node {sample.node.node_id}): "
          f"{len(sample.store)} ciphertext entries, e.g. "
          f"{next(iter(sample.store.values())).blob.wire_view()}")

    print(f"\nrequester {requester.identity} resolving {updater.identity} anonymously...")
    results = []
    sim.schedule(0.1, lambda: agents[5].lookup(requester, updater.identity, results.append))
    sim.run(until=20.0)
    if results and results[0] is not None:
        error = results[0].distance_to(updater.position)
        print(f"resolved location: {results[0]} (error {error:.1f} m)")
    else:
        print("lookup failed (try another seed / denser field)")

    total_msgs = sum(a.messages_sent for a in agents)
    total_bytes = sum(a.bytes_sent for a in agents)
    total_crypto = sum(a.crypto_ops for a in agents)
    print(f"\nservice totals: {total_msgs} messages, {total_bytes} bytes, "
          f"{total_crypto} crypto operations "
          f"({sum(a.crypto_time_charged for a in agents) * 1000:.0f} ms CPU charged)")


if __name__ == "__main__":
    main()
