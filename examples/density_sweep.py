#!/usr/bin/env python3
"""Figure 1 reproduction: the density sweep, from quick-look to paper scale.

Prints the Figure 1(a) delivery-fraction and Figure 1(b) latency series
for GPSR-Greedy, AGFW and AGFW-noACK.

Run:
  python examples/density_sweep.py                  # ~2 min quick look
  python examples/density_sweep.py --full           # paper's 900 s horizon
  python examples/density_sweep.py --nodes 50 150   # custom densities
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    DEFAULT_NODE_COUNTS,
    format_fig1a,
    format_fig1b,
    run_fig1,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="the paper's 900 s per point (hours of wallclock)")
    parser.add_argument("--sim-time", type=float, default=None)
    parser.add_argument("--nodes", type=int, nargs="*", default=None)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    sim_time = args.sim_time or (900.0 if args.full else 20.0)
    counts = tuple(args.nodes) if args.nodes else (
        DEFAULT_NODE_COUNTS if args.full else (50, 100, 112, 150)
    )

    print(f"density sweep: {counts} nodes, {sim_time:.0f} s simulated per point, "
          f"seed {args.seed}")
    started = time.perf_counter()
    points = run_fig1(node_counts=counts, sim_time=sim_time, seed=args.seed)
    elapsed = time.perf_counter() - started

    print()
    print(format_fig1a(points))
    print()
    print(format_fig1b(points))
    print(f"\n({len(points)} runs in {elapsed:.0f} s wallclock)")
    print("\nExpected shapes (paper Sec 5.2): AGFW-ACK tracks GPSR-Greedy's")
    print("delivery; AGFW-noACK is clearly below; latencies are comparable at")
    print("modest density with GPSR-Greedy rising sharply as contention grows.")


if __name__ == "__main__":
    main()
