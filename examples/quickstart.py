#!/usr/bin/env python3
"""Quickstart: send data anonymously across a small ad hoc network.

Builds a six-node static chain, runs the paper's anonymous geographic
routing stack (ANT pseudonyms + AGFW trapdoor forwarding + NL-ACKs),
sends a message end-to-end, and shows what was — and was not — visible
on the air.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import AgfwConfig, AgfwRouter
from repro.geo import Position
from repro.location import OracleLocationService
from repro.net import Node, RadioMedium, StaticMobility
from repro.sim import RngRegistry, Simulator, Tracer


def main() -> None:
    sim = Simulator()
    tracer = Tracer()
    medium = RadioMedium(sim, tracer)  # 250 m radio, 550 m interference
    rngs = RngRegistry(seed=2026)
    oracle = OracleLocationService(sim)

    # Six nodes in a 1 km chain, 200 m apart (within radio range).
    nodes = []
    for i in range(6):
        node = Node(sim, i, medium, StaticMobility(Position(i * 200.0, 0.0)), rngs, tracer)
        node.attach_router(AgfwRouter(node, oracle, AgfwConfig()))
        nodes.append(node)
    oracle.register_all(nodes)
    for node in nodes:
        node.start()  # begin pseudonymous hello beaconing

    # After tables warm up, node-0 sends 64 bytes to node-5 — addressed by
    # a trapdoor only node-5 can open, never by name.
    sim.schedule(3.0, lambda: nodes[0].router.send_data("node-5", 64))
    sim.run(until=8.0)

    sends = list(tracer.filter("app.send"))
    recvs = list(tracer.filter("app.recv"))
    print(f"sent:      {len(sends)} packet(s) from node {sends[0].node}")
    print(f"delivered: {len(recvs)} packet(s) at node {recvs[0].node}")
    latency_ms = (recvs[0].time - sends[0].time) * 1000
    print(f"latency:   {latency_ms:.2f} ms "
          "(includes 0.5 ms trapdoor seal + 8.5 ms last-hop open)")

    # What an eavesdropper saw: pseudonyms and locations, never identities.
    print("\nFirst three frames on the air, as a sniffer reads them:")
    shown = 0
    for record in tracer.filter("phy.tx"):
        packet = record.data.get("packet_obj")
        if packet is None or not hasattr(packet, "wire_view"):
            continue
        print(f"  t={record.time:7.3f}s  {packet.kind:<12} {packet.wire_view()}")
        shown += 1
        if shown == 3:
            break

    hops = tracer.count("route.forward")
    print(f"\nforwarding decisions: {hops}; "
          f"network-layer ACKs matched: {sum(n.router.acks.acks_matched for n in nodes)}")


if __name__ == "__main__":
    main()
