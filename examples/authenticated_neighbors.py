#!/usr/bin/env python3
"""Authenticated ANT with real ring signatures, and a spoofing attacker.

Demonstrates Section 3.1.2: nodes ring-sign their hellos over k decoy
certificates, so neighbors verify "an authorized user sent this" while
the signer hides in a (k+1)-anonymity set.  A certificate-less attacker
who forges hellos with arbitrary pseudonyms — the attack motivating
authentication — is rejected by every verifier.

Run:  python examples/authenticated_neighbors.py [--ring-size 4]
"""

from __future__ import annotations

import argparse

from repro.core import AantConfig, AgfwConfig, AgfwRouter
from repro.core.aant import AantAuthenticator
from repro.core.agfw import AntHello
from repro.crypto import CertificateAuthority, KeyStore
from repro.geo import Position
from repro.location import OracleLocationService
from repro.net import BROADCAST, Node, RadioMedium, StaticMobility
from repro.sim import RngRegistry, Simulator, Tracer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ring-size", type=int, default=4, help="decoys per hello (k)")
    parser.add_argument("--nodes", type=int, default=5)
    args = parser.parse_args()

    sim = Simulator()
    tracer = Tracer()
    medium = RadioMedium(sim, tracer)
    rngs = RngRegistry(31)
    oracle = OracleLocationService(sim)

    print("enrolling nodes with the offline CA (RSA-512 keys)...")
    ca = CertificateAuthority(rng=rngs.stream("ca"))
    nodes, stores = [], []
    for i in range(args.nodes):
        node = Node(sim, i, medium, StaticMobility(Position(i * 150.0, 0.0)), rngs, tracer)
        key, cert = ca.enroll(node.identity)
        stores.append(KeyStore(node.identity, key, cert))
        nodes.append(node)
    certs = [s.certificate for s in stores]
    for node, store in zip(nodes, stores):
        store.add_all(certs)  # pre-fetched decoy certificates (paper Sec 4)
        node.keystore = store
    oracle.register_all(nodes)

    config = AgfwConfig(aant=AantConfig(ring_size=args.ring_size), crypto_mode="real")
    for node in nodes:
        authenticator = AantAuthenticator(
            config.aant, mode="real", keystore=node.keystore, ca=ca,
            rng=node.rng("aant"),
        )
        node.attach_router(
            AgfwRouter(node, oracle, config, tracer, authenticator=authenticator)
        )
        node.start()

    sim.run(until=4.0)
    victim = nodes[2].router
    print(f"\nafter 4 s of ring-signed beaconing, node-2's ANT holds "
          f"{len(victim.ant)} pseudonymous entries")
    hello = next(
        r.data["packet_obj"] for r in tracer.filter("phy.tx")
        if r.data["packet_kind"] == "agfw.hello"
    )
    view = hello.wire_view()
    print(f"a captured hello: pseudonym={view['pseudonym']} loc={view['location']}")
    print(f"its ring (the k+1 anonymity set): {view['auth']['ring_subjects']}")
    print("any of these identities could have sent it; the signature does not say.")

    # --- the spoofing attacker ------------------------------------------
    print("\nattacker (no certificate) floods forged hellos...")
    attacker = Node(sim, 99, medium, StaticMobility(Position(300.0, 10.0)), rngs, tracer)

    def flood() -> None:
        forged = AntHello(
            pseudonym=b"\xde\xad\xbe\xef\x00\x01",
            position=Position(300.0, 10.0),
            timestamp=sim.now,
            auth=None,  # it cannot produce a valid ring signature
        )
        attacker.mac.send(forged, BROADCAST)

    for i in range(10):
        sim.schedule(0.2 * i, flood)
    sim.run(until=7.0)

    rejected = sum(n.router.stats.drops_auth for n in nodes)
    poisoned = sum(
        1 for n in nodes if b"\xde\xad\xbe\xef\x00\x01" in n.router.ant
    )
    print(f"forged hellos rejected by verifiers: {rejected}")
    print(f"neighbor tables poisoned: {poisoned} (must be 0)")
    assert poisoned == 0


if __name__ == "__main__":
    main()
