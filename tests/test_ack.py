"""Tests for the network-layer ACK manager."""

from __future__ import annotations

import pytest

from repro.core.ack import AckManager
from repro.core.config import AgfwConfig
from repro.sim.engine import Simulator


class _Harness:
    def __init__(self, **config_kwargs):
        self.sim = Simulator()
        self.retransmitted = []
        self.given_up = []
        self.acks_sent = []
        self.manager = AckManager(
            self.sim,
            AgfwConfig(**config_kwargs),
            retransmit=self.retransmitted.append,
            give_up=lambda packet, ref: self.given_up.append((packet, ref)),
            send_ack=self.acks_sent.append,
        )


def test_ack_before_timeout_no_retransmit():
    h = _Harness(ack_timeout=0.03)
    h.manager.watch("pkt", b"ref1")
    h.sim.schedule(0.01, lambda: h.manager.on_ack_refs((b"ref1",)))
    h.sim.run(until=1.0)
    assert h.retransmitted == []
    assert h.given_up == []
    assert h.manager.acks_matched == 1


def test_timeout_retransmits():
    h = _Harness(ack_timeout=0.03, max_retransmissions=3)
    h.manager.watch("pkt", b"ref1")
    h.sim.run(until=0.05)
    assert h.retransmitted == ["pkt"]


def test_retransmissions_backoff_exponentially():
    h = _Harness(ack_timeout=0.01, max_retransmissions=3)
    times = []
    h.manager._retransmit = lambda p: times.append(h.sim.now)
    h.manager.watch("pkt", b"r")
    h.sim.run(until=1.0)
    assert len(times) == 3
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert gaps[1] > gaps[0] * 1.5  # doubling timeouts


def test_give_up_after_max_retransmissions():
    h = _Harness(ack_timeout=0.01, max_retransmissions=2)
    h.manager.watch("pkt", b"ref1")
    h.sim.run(until=1.0)
    assert len(h.retransmitted) == 2
    assert h.given_up == [("pkt", b"ref1")]
    assert h.manager.pending_count == 0


def test_zero_retransmissions_gives_up_immediately():
    h = _Harness(ack_timeout=0.01, max_retransmissions=0)
    h.manager.watch("pkt", b"ref1")
    h.sim.run(until=1.0)
    assert h.retransmitted == []
    assert len(h.given_up) == 1


def test_ack_for_unknown_ref_ignored():
    h = _Harness()
    assert h.manager.on_ack_refs((b"nope",)) == 0


def test_batch_ack_matches_multiple():
    h = _Harness(ack_timeout=1.0)
    h.manager.watch("a", b"r1")
    h.manager.watch("b", b"r2")
    assert h.manager.on_ack_refs((b"r1", b"r2", b"r3")) == 2
    h.sim.run(until=5.0)
    assert h.retransmitted == []


def test_rewatch_restarts_timer():
    h = _Harness(ack_timeout=0.03, max_retransmissions=1)
    h.manager.watch("pkt", b"ref1")
    h.sim.schedule(0.02, lambda: h.manager.watch("pkt2", b"ref1"))
    h.sim.run(until=0.04)
    assert h.retransmitted == []  # timer restarted at 0.02
    h.sim.run(until=0.06)
    assert h.retransmitted == ["pkt2"]


def test_drop_pending():
    h = _Harness(ack_timeout=0.01)
    h.manager.watch("pkt", b"ref1")
    h.manager.drop_pending(b"ref1")
    h.sim.run(until=1.0)
    assert h.retransmitted == []


# ---------------------------------------------------------------- receiver
def test_queued_acks_flush_in_one_packet():
    h = _Harness()
    h.manager.queue_ack(b"a")
    h.manager.queue_ack(b"b")
    h.sim.run(until=0.1)
    assert h.acks_sent == [(b"a", b"b")]


def test_piggyback_drains_buffer():
    h = _Harness(piggyback_acks=True)
    h.manager.queue_ack(b"a")
    refs = h.manager.take_piggyback_refs()
    assert refs == (b"a",)
    h.sim.run(until=0.1)
    assert h.acks_sent == []  # nothing left to flush


def test_piggyback_disabled_returns_empty():
    h = _Harness(piggyback_acks=False)
    h.manager.queue_ack(b"a")
    assert h.manager.take_piggyback_refs() == ()
    h.sim.run(until=0.1)
    assert h.acks_sent == [(b"a",)]  # standalone flush still happens


# ------------------------------------------------- regression: ack dedupe
def test_queue_ack_deduplicates_within_flush_window():
    """Regression: a retransmitted data packet re-requests the same ref
    before the flush fires; the ACK frame must carry it once, not twice."""
    h = _Harness()
    h.manager.queue_ack(b"a")
    h.manager.queue_ack(b"a")  # retransmission arrived before the flush
    h.manager.queue_ack(b"b")
    h.sim.run(until=0.1)
    assert h.acks_sent == [(b"a", b"b")]
    assert h.manager.acks_deduped == 1


def test_queue_ack_requeues_after_drain():
    """Dedupe is per flush *window*: once the buffer drains, a fresh
    retransmission (whose previous ACK was lost on the air) must earn a
    fresh ACK copy."""
    h = _Harness()
    h.manager.queue_ack(b"a")
    h.sim.run(until=0.1)
    h.manager.queue_ack(b"a")  # the first ACK was lost; data came again
    h.sim.run(until=0.2)
    assert h.acks_sent == [(b"a",), (b"a",)]
    assert h.manager.acks_deduped == 0


def test_piggyback_dedupe_interleaving():
    """Regression for the flush-timer lifecycle: piggyback drains must
    disarm the pending flush, and refs queued *after* a piggyback drain
    start a fresh window (new flush timer, no dedupe carry-over)."""
    h = _Harness(piggyback_acks=True)
    h.manager.queue_ack(b"a")            # arms the flush timer
    assert h.manager.take_piggyback_refs() == (b"a",)  # drains + disarms
    h.manager.queue_ack(b"a")            # fresh window: not a duplicate
    h.manager.queue_ack(b"a")            # duplicate within the new window
    h.sim.run(until=0.1)
    assert h.acks_sent == [(b"a",)]      # exactly one standalone flush
    assert h.manager.acks_deduped == 1


def test_flush_timer_not_stale_after_piggyback():
    """After a piggyback drain cancels the armed flush, queueing again
    must re-arm — the old (cancelled) handle must not suppress it."""
    h = _Harness(piggyback_acks=True)
    h.manager.queue_ack(b"a")
    h.manager.take_piggyback_refs()
    h.manager.queue_ack(b"b")
    h.sim.run(until=0.1)
    assert h.acks_sent == [(b"b",)]


# --------------------------------------------- regression: attempts reset
def test_rewatch_resets_backoff_attempts():
    """Regression: after give-up→re-route, the new forwarder must start
    from the *base* timeout, not the evicted neighbor's backed-off one."""
    h = _Harness(ack_timeout=0.01, max_retransmissions=2)
    times = []
    h.manager._retransmit = lambda p: times.append(h.sim.now)
    h.manager.watch("pkt", b"r")
    h.sim.run(until=0.02)  # first timeout fired at 0.01; attempts now 1
    assert len(times) == 1
    h.manager.watch("pkt2", b"r")  # fresh forwarding decision at t=0.02
    h.sim.run(until=0.035)
    # Next retransmit must come after the BASE timeout (0.02 + 0.01), not
    # the backed-off 0.02 s the old neighbor had earned (0.02 + 0.02).
    assert len(times) == 2
    assert times[1] == pytest.approx(0.03, abs=1e-9)


def test_rewatch_grants_full_retry_budget():
    """A re-watched ref gets the full max_retransmissions again."""
    h = _Harness(ack_timeout=0.01, max_retransmissions=1)
    h.manager.watch("pkt", b"r")
    h.sim.run(until=0.015)  # one retransmission burned
    assert len(h.retransmitted) == 1
    h.manager.watch("pkt2", b"r")
    h.sim.run(until=1.0)
    assert h.retransmitted == ["pkt", "pkt2"]  # full budget again
    assert len(h.given_up) == 1  # then gave up once, at the end


# ------------------------------------------------------- reset (crash)
def test_reset_cancels_timers_and_empties_state():
    h = _Harness(ack_timeout=0.01, max_retransmissions=3)
    h.manager.watch("pkt", b"r1")
    h.manager.queue_ack(b"a")
    h.manager.reset()
    h.sim.run(until=1.0)
    assert h.retransmitted == []
    assert h.acks_sent == []
    assert h.manager.pending_count == 0
    # A post-reset queue still works (fresh window).
    h.manager.queue_ack(b"b")
    h.sim.run(until=2.0)
    assert h.acks_sent == [(b"b",)]


def test_config_validation():
    with pytest.raises(ValueError):
        AgfwConfig(ack_timeout=0.0)
    with pytest.raises(ValueError):
        AgfwConfig(max_retransmissions=-1)
    with pytest.raises(ValueError):
        AgfwConfig(pseudonym_memory=0)
    with pytest.raises(ValueError):
        AgfwConfig(crypto_mode="imaginary")
