"""Bitwise scalar-vs-batch equivalence for the vectorized kernels.

The array backend is only admissible because every float it produces is
**bit-identical** to the scalar object path — not merely close.  These
tests enforce that with randomized sweeps: random legs, query times
planted exactly on pause boundaries, zero-length legs, and the grid /
distance kernels, all compared bit-for-bit (``struct.pack`` of the
doubles, so ``-0.0 != 0.0`` and NaNs would fail loudly).
"""

from __future__ import annotations

import math
import random
import struct

import pytest

from repro.geo import vecops
from repro.geo.vec import Position
from repro.net.mobility import WaypointLeg

pytestmark = pytest.mark.skipif(
    not vecops.HAVE_NUMPY, reason="numpy not available (repro[fast] extra)"
)


def _bits(value: float) -> bytes:
    """The IEEE-754 bit pattern — the equality the contract promises."""
    return struct.pack("<d", value)


def _random_leg(rng: random.Random) -> WaypointLeg:
    origin = Position(rng.uniform(-1500.0, 1500.0), rng.uniform(-300.0, 300.0))
    if rng.random() < 0.15:  # zero-length leg: arrive == depart
        target = origin
    else:
        target = Position(rng.uniform(-1500.0, 1500.0), rng.uniform(-300.0, 300.0))
    speed = 0.0 if rng.random() < 0.1 else rng.uniform(0.5, 20.0)
    depart = rng.uniform(0.0, 100.0)
    return WaypointLeg(origin, target, speed, depart)


def _query_times(rng: random.Random, legs: list[WaypointLeg]) -> list[float]:
    """Uniform draws plus the exact boundary instants of every leg."""
    times = [rng.uniform(-10.0, 400.0) for _ in range(12)]
    for leg in legs:
        times.extend(
            [
                leg.depart_time,  # pause boundary, exact
                leg.arrive_time,  # arrival boundary, exact
                math.nextafter(leg.depart_time, math.inf),
                math.nextafter(leg.arrive_time, -math.inf),
            ]
        )
    return [t for t in times if math.isfinite(t)]


@pytest.mark.parametrize("seed", [7, 19, 101])
def test_batch_position_bitwise_equals_scalar(seed):
    rng = random.Random(seed)
    legs = [_random_leg(rng) for _ in range(40)]
    arrays = vecops.LegArrays()
    for leg in legs:
        row = arrays.append_row()
        arrays.set_leg(row, leg)
    for t in _query_times(rng, legs):
        x, y = vecops.batch_position_at(arrays, t)
        for i, leg in enumerate(legs):
            ref = leg.position_at(t)
            assert _bits(float(x[i])) == _bits(ref.x), (i, t)
            assert _bits(float(y[i])) == _bits(ref.y), (i, t)


@pytest.mark.parametrize("seed", [3, 23])
def test_batch_velocity_bitwise_equals_scalar(seed):
    rng = random.Random(seed)
    legs = [_random_leg(rng) for _ in range(40)]
    arrays = vecops.LegArrays()
    for leg in legs:
        arrays.set_leg(arrays.append_row(), leg)
    for t in _query_times(rng, legs):
        vx, vy = vecops.batch_velocity_at(arrays, t)
        for i, leg in enumerate(legs):
            ref_vx, ref_vy = leg.velocity_at(t)
            assert _bits(float(vx[i])) == _bits(ref_vx), (i, t)
            assert _bits(float(vy[i])) == _bits(ref_vy), (i, t)


def test_fixed_rows_interpolate_without_nan():
    """set_fixed's depart/arrive sentinel must never produce a NaN lane
    (the inf - inf shape) for any query time."""
    arrays = vecops.LegArrays()
    arrays.set_fixed(arrays.append_row(), 12.5, -3.25)
    for t in (-1e9, -1.0, 0.0, 1.0, 1e9):
        x, y = vecops.batch_position_at(arrays, t)
        assert _bits(float(x[0])) == _bits(12.5)
        assert _bits(float(y[0])) == _bits(-3.25)
        vx, vy = vecops.batch_velocity_at(arrays, t)
        assert float(vx[0]) == 0.0 and float(vy[0]) == 0.0


@pytest.mark.parametrize("seed", [11, 31])
def test_batch_cells_and_margins_match_scalar(seed):
    import numpy as np

    rng = random.Random(seed)
    cell = 550.0
    xs = np.array([rng.uniform(-2000.0, 2000.0) for _ in range(200)])
    ys = np.array([rng.uniform(-2000.0, 2000.0) for _ in range(200)])
    col, row = vecops.batch_cells(xs, ys, cell)
    assert col.dtype == np.int32 and row.dtype == np.int32
    margins = vecops.batch_cell_margins(xs, ys, col, row, cell)
    for i in range(len(xs)):
        px, py = float(xs[i]), float(ys[i])
        scol, srow = math.floor(px / cell), math.floor(py / cell)
        assert (int(col[i]), int(row[i])) == (scol, srow)
        ref = min(
            px - scol * cell,
            (scol + 1) * cell - px,
            py - srow * cell,
            (srow + 1) * cell - py,
        )
        assert _bits(float(margins[i])) == _bits(ref)


@pytest.mark.parametrize("seed", [5, 17])
def test_batch_distance2_bitwise_equals_scalar(seed):
    import numpy as np

    rng = random.Random(seed)
    pts = [Position(rng.uniform(0, 1500), rng.uniform(0, 300)) for _ in range(120)]
    center = Position(rng.uniform(0, 1500), rng.uniform(0, 300))
    xs = np.array([p.x for p in pts])
    ys = np.array([p.y for p in pts])
    dx, dy, d2 = vecops.batch_distance2(xs, ys, center.x, center.y)
    for i, p in enumerate(pts):
        assert _bits(float(d2[i])) == _bits(p.distance2_to(center))
        # The true distance the medium feeds receivers: scalar hypot on
        # the batch deltas, bitwise what distance_to computes.
        assert _bits(math.hypot(float(dx[i]), float(dy[i]))) == _bits(
            p.distance_to(center)
        )


def test_leg_roll_continuity_is_bitwise():
    """At a roll instant the old leg's target and the new leg's origin
    are the same object, so stale rows stay bitwise correct."""
    a = Position(10.0, 20.0)
    b = Position(130.0, 80.0)
    c = Position(400.0, 40.0)
    first = WaypointLeg(a, b, 7.0, 0.0)
    second = WaypointLeg(first.target, c, 4.0, first.arrive_time)
    arrays = vecops.LegArrays()
    arrays.set_leg(arrays.append_row(), first)  # deliberately stale
    t = first.arrive_time
    x, y = vecops.batch_position_at(arrays, t)
    ref = second.position_at(t)
    assert _bits(float(x[0])) == _bits(ref.x)
    assert _bits(float(y[0])) == _bits(ref.y)


def test_legarrays_growth_preserves_rows():
    rng = random.Random(2)
    legs = [_random_leg(rng) for _ in range(50)]  # forces several _grow()s
    arrays = vecops.LegArrays(capacity=1)
    for leg in legs:
        arrays.set_leg(arrays.append_row(), leg)
    x, y = vecops.batch_position_at(arrays, 50.0)
    for i, leg in enumerate(legs):
        ref = leg.position_at(50.0)
        assert _bits(float(x[i])) == _bits(ref.x)
        assert _bits(float(y[i])) == _bits(ref.y)


def test_pure_python_mode_reports_no_numpy():
    """REPRO_PURE_PYTHON=1 must force the fallback flag off at import
    time; consumers then refuse to build array structures and the
    scenario layer silently runs the object/scalar path."""
    import subprocess
    import sys

    code = (
        "import os; os.environ['REPRO_PURE_PYTHON'] = '1'\n"
        "from repro.geo import vecops\n"
        "assert not vecops.HAVE_NUMPY\n"
        "raised = False\n"
        "try:\n"
        "    vecops.LegArrays()\n"
        "except RuntimeError:\n"
        "    raised = True\n"
        "assert raised\n"
        "from repro.experiments.scenario import ScenarioConfig, run_scenario\n"
        "r = run_scenario(ScenarioConfig(protocol='agfw', num_nodes=8, sim_time=2.0, seed=1))\n"
        "assert r.sent > 0\n"
        "print('fallback-ok')\n"
    )
    import os
    import pathlib

    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "fallback-ok" in proc.stdout
