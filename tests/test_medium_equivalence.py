"""Grid-vs-brute equivalence and medium substrate regressions.

The spatial index is only admissible because it is *outcome-invisible*:
every scenario must produce bit-identical results under ``brute``,
``grid``, and ``cross`` fan-out.  ``cross`` additionally asserts the
equivalence on every single query inside the run, so one passing cross
run is a per-transmission proof for that workload.
"""

from __future__ import annotations

import pytest

from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.geo.vec import Position
from repro.net.medium import RadioMedium
from repro.net.mobility import StaticMobility
from repro.net.phy import PhyRadio
from repro.sim.engine import Simulator
from repro.net.addresses import BROADCAST, MacAddress
from repro.net.mac.frames import FrameKind, MacFrame


def _signature(result):
    """Everything observable about a run except wallclock."""
    return (
        result.sent,
        result.delivered,
        result.frames_on_air,
        result.collisions,
        result.mean_latency,
        sorted(result.bytes_by_kind.items()),
        sorted(result.frames_by_kind.items()),
    )


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("static", [True, False], ids=["static", "rwp"])
def test_grid_brute_cross_identical_outcomes(seed, static):
    base = dict(
        protocol="agfw",
        num_nodes=22,
        sim_time=12.0,
        seed=seed,
        num_flows=6,
        num_senders=5,
        static=static,
        # pause_time=0 keeps RWP nodes actually moving inside the short
        # horizon, exercising the lazy-rebucketing path for real.
        pause_time=0.0,
        min_speed=5.0,
    )
    signatures = [
        _signature(run_scenario(ScenarioConfig(medium_index=mode, **base)))
        for mode in ("brute", "grid", "cross")
    ]
    assert signatures[0] == signatures[1] == signatures[2]
    assert signatures[0][0] > 0  # the workload actually sent traffic


def test_invalid_index_mode_rejected():
    with pytest.raises(ValueError):
        RadioMedium(Simulator(), index_mode="octree")


# ----------------------------------------------------------- tx uid scope
def test_tx_uids_restart_per_medium():
    """Regression: the tx uid counter must live on the medium, not the
    module — a second simulation in the same process restarts at 1."""

    def first_uid() -> int:
        sim = Simulator()
        medium = RadioMedium(sim)
        radios = [
            PhyRadio(sim, i, medium, StaticMobility(Position(float(i) * 100.0, 0.0)))
            for i in range(2)
        ]
        frame = MacFrame(FrameKind.DATA, MacAddress(1), BROADCAST)
        tx = medium.transmit(radios[0], frame, 1e-4)
        sim.run()
        return tx.uid

    assert first_uid() == 1
    assert first_uid() == 1  # the old module-global counter returned 2 here


def test_radios_property_is_live_registration_order_view():
    sim = Simulator()
    medium = RadioMedium(sim)
    radios = [
        PhyRadio(sim, i, medium, StaticMobility(Position(float(i), 0.0)))
        for i in range(3)
    ]
    assert list(medium.radios) == radios
    extra = PhyRadio(sim, 3, medium, StaticMobility(Position(3.0, 0.0)))
    assert list(medium.radios) == radios + [extra]  # live view, not a snapshot


def test_transmission_membership_fields_are_sets():
    sim = Simulator()
    medium = RadioMedium(sim)
    radios = [
        PhyRadio(sim, i, medium, StaticMobility(Position(float(i) * 100.0, 0.0)))
        for i in range(3)
    ]
    frame = MacFrame(FrameKind.DATA, MacAddress(1), BROADCAST)
    tx = medium.transmit(radios[0], frame, 1e-4)
    assert isinstance(tx.deliverable_to, set)
    assert isinstance(tx.corrupted_at, set)
    assert tx.deliverable_to == {1, 2}
    sim.run()


# -------------------------------------------------------- static fan-out memo
def _bare_medium(index_mode="grid"):
    sim = Simulator()
    medium = RadioMedium(sim, index_mode=index_mode)
    radios = [
        PhyRadio(sim, i, medium, StaticMobility(Position(float(i) * 200.0, 0.0)))
        for i in range(4)
    ]
    return sim, medium, radios


def test_static_fanout_memo_reused_and_identical():
    sim, medium, radios = _bare_medium()
    frame = MacFrame(FrameKind.DATA, MacAddress(1), BROADCAST)
    first = medium.transmit(radios[0], frame, 1e-4)
    sim.run()
    second = medium.transmit(radios[0], frame, 1e-4)
    sim.run()
    assert second.deliverable_to == first.deliverable_to
    # The memo hit skips the index gather entirely: no new cache activity
    # beyond the first transmission's.
    stats = medium.index_stats()
    assert stats is not None and stats["radios"] == 4


def test_teleport_invalidates_static_fanout_memo():
    sim, medium, radios = _bare_medium()
    frame = MacFrame(FrameKind.DATA, MacAddress(1), BROADCAST)
    first = medium.transmit(radios[0], frame, 1e-4)
    sim.run()
    assert first.deliverable_to == {1}  # only the 200 m neighbour decodes
    # Teleport radio 3 from 600 m (out of range) to 100 m (in range).
    radios[3].mobility.move_to(Position(100.0, 0.0))
    second = medium.transmit(radios[0], frame, 1e-4)
    sim.run()
    assert second.deliverable_to == {1, 3}


def test_memo_disabled_while_any_radio_mobile_cross_checked():
    """With a mobile radio present the memo must stay off; run in cross
    mode so every fan-out is verified against brute force."""
    cfg = ScenarioConfig(
        protocol="agfw",
        num_nodes=12,
        sim_time=6.0,
        seed=5,
        num_flows=4,
        num_senders=3,
        static=False,
        pause_time=0.0,
        min_speed=5.0,
        medium_index="cross",
    )
    result = run_scenario(cfg)
    assert result.sent > 0  # cross mode raised nowhere: equivalence held
