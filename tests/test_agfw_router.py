"""Integration tests for the AGFW router (Algorithm 3.2 behaviours)."""

from __future__ import annotations

import pytest

from repro.core.agfw import AgfwData, AntHello
from repro.core.config import AantConfig, AgfwConfig
from repro.core.pseudonym import LAST_ATTEMPT
from repro.geo.vec import Position
from tests.conftest import build_static_net, line_positions


def _agfw_net(positions, **config_kwargs):
    return build_static_net(
        positions, protocol="agfw", agfw_config=AgfwConfig(**config_kwargs)
    )


def test_hellos_build_anonymous_tables():
    net = _agfw_net(line_positions(3))
    net.sim.run(until=3.0)
    middle = net.nodes[1].router
    assert len(middle.ant) >= 2  # at least one entry per physical neighbor


def test_hello_carries_no_identity():
    net = _agfw_net(line_positions(2))
    net.sim.run(until=2.0)
    hellos = [
        r.data["packet_obj"]
        for r in net.tracer.filter("phy.tx")
        if r.data["packet_kind"] == "agfw.hello"
    ]
    assert hellos
    for hello in hellos:
        view = hello.wire_view()
        assert "identity" not in view
        assert "node-" not in str(view.get("pseudonym"))


def test_end_to_end_delivery_on_line():
    net = _agfw_net(line_positions(5))
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-4", 64))
    net.sim.run(until=8.0)
    assert [d[0] for d in net.deliveries()] == [4]


def test_delivery_includes_crypto_delays():
    """Source seal (0.5 ms) + last-hop open (8.5 ms) must appear in latency."""
    net = _agfw_net(line_positions(2))
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-1", 64))
    net.sim.run(until=5.0)
    (_, _, recv_t), = net.deliveries()
    (_, _, send_t), = net.sends()
    assert recv_t - send_t >= 0.009  # 0.5 + 8.5 ms


def test_data_header_has_location_pseudonym_trapdoor_only():
    net = _agfw_net(line_positions(3))
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-2", 64))
    net.sim.run(until=6.0)
    data_frames = [
        r.data["packet_obj"]
        for r in net.tracer.filter("phy.tx")
        if r.data["packet_kind"] == "agfw.data"
    ]
    assert data_frames
    view = data_frames[0].wire_view()
    assert set(view) == {"dest_location", "next_pseudonym", "trapdoor"}
    assert view["trapdoor"] == {"opaque_bytes": 64}


def test_nl_acks_flow_when_enabled():
    net = _agfw_net(line_positions(4), enable_ack=True)
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=8.0)
    acks = [r for r in net.tracer.filter("phy.tx") if r.data["packet_kind"] == "agfw.ack"]
    assert acks  # every hop acknowledges
    assert sum(n.router.acks.acks_matched for n in net.nodes) >= 3


def test_no_acks_when_disabled():
    net = _agfw_net(line_positions(4), enable_ack=False)
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=8.0)
    acks = [r for r in net.tracer.filter("phy.tx") if r.data["packet_kind"] == "agfw.ack"]
    assert acks == []
    assert [d[0] for d in net.deliveries()] == [3]  # quiet channel: still arrives


def test_last_forwarding_attempt_reaches_destination():
    """Kill the destination's hellos so nobody holds its pseudonym: the
    last-hop node must broadcast n=0 and the destination must accept."""
    net = build_static_net(line_positions(3), protocol="agfw", start=False,
                           agfw_config=AgfwConfig())
    # Start routers except the destination's beaconing (it stays silent).
    for node in net.nodes[:-1]:
        node.start()
    dest = net.nodes[2]
    dest.mac.receive_callback = dest.router.on_packet  # listen without beaconing
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-2", 64))
    net.sim.run(until=8.0)
    last_attempts = list(net.tracer.filter("agfw.last_attempt"))
    assert last_attempts
    assert [d[0] for d in net.deliveries()] == [2]


def test_deadend_outside_last_hop_region_drops():
    positions = [Position(0, 0), Position(200, 0), Position(900, 0)]
    net = _agfw_net(positions)
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-2", 64))
    net.sim.run(until=8.0)
    assert net.deliveries() == []
    assert any(
        r.data.get("reason") == "deadend" for r in net.tracer.filter("route.drop")
    )


def test_non_addressed_node_discards_silently():
    """A node that owns neither the pseudonym nor sees n=0 must not forward."""
    net = _agfw_net(line_positions(3))
    net.sim.run(until=3.0)
    router = net.nodes[2].router
    from repro.core.trapdoor import TrapdoorFactory, TrapdoorContents

    trapdoor, _ = router.trapdoors.seal(
        "node-9", None, TrapdoorContents("node-0", Position(0, 0), 0.0)
    )
    packet = AgfwData(
        payload_bytes=10,
        dest_location=Position(400, 0),
        next_pseudonym=b"\xaa" * 6,
        trapdoor=trapdoor,
        ttl=10,
    )
    before = router.stats.forwarded
    router._on_data(packet)
    net.sim.run(until=4.0)
    assert router.stats.forwarded == before


def test_duplicate_data_reacks_but_does_not_reforward():
    net = _agfw_net(line_positions(3))
    net.sim.run(until=3.0)
    router = net.nodes[1].router
    pseudonym = router.pseudonyms.current
    from repro.core.trapdoor import TrapdoorContents

    trapdoor, _ = router.trapdoors.seal(
        "node-2", None, TrapdoorContents("node-0", Position(0, 0), 0.0)
    )
    packet = AgfwData(
        payload_bytes=10,
        dest_location=Position(400, 0),
        next_pseudonym=pseudonym,
        trapdoor=trapdoor,
        ttl=10,
    )
    router._on_data(packet)
    net.sim.run(until=3.5)
    forwarded_once = router.stats.forwarded
    router._on_data(packet)  # duplicate (sender missed our ACK)
    net.sim.run(until=4.0)
    assert router.stats.forwarded == forwarded_once


def test_retransmission_after_lost_ack():
    """Remove the committed forwarder mid-exchange: the sender must
    retransmit and eventually reroute or give up."""
    net = _agfw_net(line_positions(3), ack_timeout=0.02, max_retransmissions=2)
    net.sim.run(until=3.0)
    source = net.nodes[0].router
    # Point the packet at a pseudonym nobody owns.
    from repro.core.trapdoor import TrapdoorContents

    trapdoor, _ = source.trapdoors.seal(
        "node-2", None, TrapdoorContents("node-0", Position(0, 0), 0.0)
    )
    packet = AgfwData(
        payload_bytes=10,
        dest_location=Position(400, 0),
        next_pseudonym=b"\xbb" * 6,
        trapdoor=trapdoor,
        ttl=10,
    )
    source.acks.watch(packet, trapdoor.ref_bytes())
    net.sim.run(until=5.0)
    assert source.acks.retransmissions == 2
    assert source.acks.give_ups == 1


def test_ttl_expiry_drops():
    net = _agfw_net(line_positions(6), data_ttl=2)
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-5", 64))
    net.sim.run(until=8.0)
    assert net.deliveries() == []


def test_aant_enabled_tables_still_build_and_deliver():
    from repro.core.aant import AantAuthenticator

    net = build_static_net(line_positions(3), protocol="agfw", start=False,
                           attach_routers=False)
    from repro.core.agfw import AgfwRouter

    config = AgfwConfig(aant=AantConfig(ring_size=2))
    for node in net.nodes:
        auth = AantAuthenticator(config.aant, mode="modeled")
        node.attach_router(
            AgfwRouter(node, net.oracle, config, net.tracer, authenticator=auth)
        )
    for node in net.nodes:
        node.start()
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-2", 64))
    net.sim.run(until=8.0)
    assert [d[0] for d in net.deliveries()] == [2]


def test_aant_rejects_forged_hellos():
    from repro.core.aant import AantAttachment, AantAuthenticator
    from repro.core.agfw import AgfwRouter

    net = build_static_net(line_positions(2), protocol="agfw", start=False,
                           attach_routers=False)
    config = AgfwConfig(aant=AantConfig(ring_size=2))
    for node in net.nodes:
        auth = AantAuthenticator(config.aant, mode="modeled")
        node.attach_router(
            AgfwRouter(node, net.oracle, config, net.tracer, authenticator=auth)
        )
    victim = net.nodes[1].router
    forged = AntHello(
        pseudonym=b"\xee" * 6,
        position=Position(100, 0),
        timestamp=0.0,
        auth=AantAttachment(ring_size=3, extra_bytes=0, modeled_valid=False),
    )
    victim._on_hello(forged)
    net.sim.run(until=1.0)
    assert b"\xee" * 6 not in victim.ant
    assert victim.stats.drops_auth == 1
