"""Scale-up layer of the sharded runtime: piggybacked promise rounds,
the shared-memory position plane, adaptive column boundaries, and the
slim keyed event queue.

Everything here rides the same proof discipline as
``test_shard_equivalence``: ``shard_mode="cross"`` compares the merged
shard trace record-by-record against the unmodified single engine and
raises :class:`ShardCoherenceError` on the first divergence, so a
passing cross run IS the byte-identical claim for that feature
combination.  The queue churn tests work one level down, driving
:class:`KeyedSimulator` directly and asserting the slim (timer-wheel +
swept index) backend pops the exact sequence the three-heap reference
does under randomized schedule/cancel/probe churn.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import replace

import pytest

from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.geo.partition import ColumnPartition, rebalanced_boundaries
from repro.sim.keyed import KeyedSimulator
from repro.sim.shard import ShardCoherenceError
from repro.sim.shard.shmplane import ShardPlane, plane_supported
from repro.sim.shard.worker import ShardWorker
from tests.test_shard_equivalence import _cfg, _faulted, _fingerprint


# ------------------------------------------------- slim keyed queue churn
def _churn_log(queue_mode: str, seed: int) -> list:
    """Drive a KeyedSimulator through randomized churn; return the full
    observable history (execution order, promise-scan probes).

    The rng is re-seeded per run and drawn from inside event callbacks,
    so the log is a fixed point of the pop order itself: if the two
    backends popped in different orders, the rng streams would diverge
    and so would every subsequent entry.
    """
    rng = random.Random(seed)
    sim = KeyedSimulator(queue_mode=queue_mode)
    log: list = []
    live: list = []

    def make_cb(label: str, depth: int):
        def cb() -> None:
            log.append((label, round(sim.now, 9)))
            if depth < 6 and rng.random() < 0.6:
                child = sim.schedule_at(
                    sim.now + rng.random(),
                    make_cb(label + ".", depth + 1),
                    priority=rng.choice((10, 20, 30)),
                    name=rng.choice(("app.tick", "mac.slot", "mac.difs")),
                    actor=rng.choice((None, -1, 0, 1, 2, 3)),
                )
                live.append(child)
            if live and rng.random() < 0.3:
                live.pop(rng.randrange(len(live))).cancel()
        return cb

    for i in range(40):
        ev = sim.schedule_at(
            rng.random() * 2.0,
            make_cb(f"r{i}", 0),
            priority=rng.choice((10, 20, 30)),
            name=rng.choice(("app.tick", "mac.slot")),
            actor=rng.choice((None, -1, 0, 1, 2, 3)),
        )
        if rng.random() < 0.2:
            ev.cancel()
        else:
            live.append(ev)

    steps = 0
    while True:
        if steps % 5 == 0:
            # The promise scan is where the slim backend's swept indexes
            # replace the reference min-heaps — probe them mid-churn.
            log.append(
                ("probe",)
                + tuple(sim.actor_next_time(a) for a in range(4))
                + (sim.untracked_next_time(),)
            )
        if not sim.execute_next():
            break
        steps += 1
        assert steps < 20000, "runaway churn"
    log.append(("drained", round(sim.now, 9), steps))
    return log


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_slim_queue_matches_threeheap_under_churn(seed):
    assert _churn_log("slim", seed) == _churn_log("threeheap", seed)


def test_keyed_queue_mode_validation():
    with pytest.raises(ValueError):
        KeyedSimulator(queue_mode="heapless")
    assert KeyedSimulator(queue_mode="slim").scheduler_mode == "wheel"
    assert KeyedSimulator(queue_mode="threeheap").scheduler_mode == "heap"


def test_cross_threeheap_reference_byte_identical():
    """The reference queue still proves byte-identity end to end, so
    churn equivalence + this pins both backends to the single engine."""
    result = Scenario(
        _cfg(5, shard_mode="cross", shards=3, keyed_queue="threeheap")
    ).run()
    assert result.sent > 0


def test_fork_slim_and_threeheap_results_match():
    slim = Scenario(_cfg(6, shard_mode="on", shards=2)).run()
    ref = Scenario(
        _cfg(6, shard_mode="on", shards=2, keyed_queue="threeheap")
    ).run()
    assert _fingerprint(slim) == _fingerprint(ref)


# --------------------------------------------------- promise piggybacking
def test_piggyback_halves_ipc_messages_per_round():
    pig = Scenario(_cfg(1, shard_mode="on", shards=2)).run()
    legacy = Scenario(
        _cfg(1, shard_mode="on", shards=2, shard_piggyback=False)
    ).run()
    assert _fingerprint(pig) == _fingerprint(legacy)
    ps, ls = pig.shard_stats, legacy.shard_stats
    assert ps["piggyback"] and not ls["piggyback"]
    # Steady state is exactly 2 messages per shard per round piggybacked
    # (request + reply) vs 4 legacy (promise round + execute round).
    assert ps["ipc_messages_per_round"] == pytest.approx(2 * 2, abs=0.01)
    assert ls["ipc_messages_per_round"] == pytest.approx(4 * 2, abs=0.01)
    assert ls["ipc_messages"] >= 2 * ps["ipc_messages"] * 0.9
    assert ps["promise_rounds"] == 1  # the bootstrap round only
    assert ps["ipc_bytes"] > 0 and ls["ipc_bytes"] > 0


def test_cross_legacy_rounds_byte_identical():
    result = Scenario(
        _cfg(7, shard_mode="cross", shards=3, shard_piggyback=False)
    ).run()
    assert result.sent > 0
    assert result.shard_stats["piggyback"] is False


# ------------------------------------------------- shared position plane
needs_plane = pytest.mark.skipif(
    not plane_supported(), reason="shared plane requires numpy"
)


@needs_plane
def test_fork_plane_enabled_matches_plane_disabled():
    on = Scenario(_cfg(2, shard_mode="on", shards=2)).run()
    off = Scenario(_cfg(2, shard_mode="on", shards=2, shard_plane=False)).run()
    assert _fingerprint(on) == _fingerprint(off)
    assert on.shard_stats["plane"] is True
    assert off.shard_stats["plane"] is False


@needs_plane
def test_plane_resolve_matches_position_formula():
    class Legs:
        pass

    legs = Legs()
    legs.ox, legs.oy = [10.0, 5.0], [20.0, 6.0]
    legs.gx, legs.gy = [110.0, 5.0], [220.0, 6.0]
    legs.depart, legs.arrive = [1.0, float("inf")], [3.0, float("-inf")]
    legs.span = [2.0, float("inf")]
    legs.dgx, legs.dgy = [100.0, 0.0], [200.0, 0.0]
    import numpy as np

    for field in ("ox", "oy", "gx", "gy", "depart", "arrive", "span", "dgx", "dgy"):
        setattr(legs, field, np.asarray(getattr(legs, field)))
    plane = ShardPlane(2, 1)
    try:
        assert not plane.resolvable(0, 2.0)  # unpublished rows never resolve
        epoch = plane.publish_legs(0, np.asarray([0, 1]), legs, np.asarray([0, 1]))
        assert epoch == plane.epoch(0) == 1
        assert plane.resolve(0, 0.5) == (10.0, 20.0)  # t <= depart: origin
        assert plane.resolve(0, 7.0) == (110.0, 220.0)  # t >= arrive: target
        mx, my = plane.resolve(0, 2.0)  # mid-leg interpolation
        frac = (2.0 - 1.0) / 2.0
        assert (mx, my) == (100.0 * frac + 10.0, 200.0 * frac + 20.0)
        assert not plane.resolvable(1, 1e9)  # fixed row: depart = +inf
    finally:
        plane.destroy()


def _shm_segments() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@needs_plane
def test_killed_worker_leaks_no_shm_segments(monkeypatch):
    """SIGKILL a worker mid-window: the driver must surface a coherent
    error and the plane segment must not outlive the run."""
    before = _shm_segments()
    original = ShardWorker.execute_window

    def dying(self, horizon):
        if self.shard_index == 1:
            os.kill(os.getpid(), signal.SIGKILL)
        return original(self, horizon)

    # Applied pre-fork, so the patched class is inherited by the worker
    # processes; shard 1 dies the instant its first window opens.
    monkeypatch.setattr(ShardWorker, "execute_window", dying)
    with pytest.raises(ShardCoherenceError, match="terminated mid-protocol"):
        Scenario(_cfg(3, shard_mode="on", shards=2)).run()
    assert _shm_segments() == before


def test_normal_runs_leak_no_shm_segments():
    before = _shm_segments()
    Scenario(_cfg(4, shard_mode="on", shards=2)).run()
    assert _shm_segments() == before


# --------------------------------------------------- adaptive boundaries
def test_rebalanced_boundaries_uniform_load_keeps_equal_width():
    cuts = rebalanced_boundaries(0.0, 1200.0, 4, [10.0, 10.0, 10.0, 10.0])
    assert cuts == pytest.approx((300.0, 600.0, 900.0))


def test_rebalanced_boundaries_shift_toward_load():
    # All load in column 0: every cut clamps to its left floor so the
    # loaded column is carved as finely as min_fraction allows.
    cuts = rebalanced_boundaries(0.0, 1200.0, 3, [30.0, 0.0, 0.0])
    assert len(cuts) == 2
    assert all(b > a for a, b in zip((0.0,) + cuts, cuts))
    assert cuts[0] < 400.0 and cuts[1] < 800.0  # both pulled left of equal-width
    # Skew the other way: load on the right pulls cuts right.
    right = rebalanced_boundaries(0.0, 1200.0, 3, [0.0, 0.0, 30.0])
    assert right[0] > 400.0 and right[1] > 800.0


def test_rebalanced_boundaries_respects_min_fraction_floor():
    # min_fraction=0.5 makes the clamp binding: the load-equalizing cuts
    # for an all-left load would carve columns of 62.5 m, but every
    # column must keep at least half the equal-width size (125 m).
    cuts = rebalanced_boundaries(
        0.0, 1000.0, 4, [100.0, 0.0, 0.0, 0.0], min_fraction=0.5
    )
    widths = [b - a for a, b in zip((0.0,) + cuts, cuts + (1000.0,))]
    floor = (1000.0 / 4) * 0.5
    assert all(w >= floor - 1e-9 for w in widths)
    assert cuts == pytest.approx((125.0, 250.0, 375.0))


def test_rebalanced_boundaries_zero_load_equal_width():
    assert rebalanced_boundaries(0.0, 900.0, 3, [0, 0, 0]) == pytest.approx(
        (300.0, 600.0)
    )
    assert rebalanced_boundaries(0.0, 900.0, 1, [5]) == ()


def test_rebalanced_boundaries_quantized_and_deterministic():
    loads = [7.0, 3.0, 11.0, 2.0]
    a = rebalanced_boundaries(0.0, 1234.567, 4, loads)
    b = rebalanced_boundaries(0.0, 1234.567, 4, loads)
    assert a == b
    for cut in a:
        assert cut == pytest.approx(round(cut / 1e-6) * 1e-6, abs=0.0)


def test_column_partition_explicit_boundaries():
    part = ColumnPartition(0.0, 1200.0, 3, boundaries=(200.0, 900.0))
    assert part.column_of(100.0) == 0
    assert part.column_of(200.0) == 1  # cuts are [lo, hi) like equal width
    assert part.column_of(899.0) == 1
    assert part.column_of(1150.0) == 2
    assert part.column_bounds(0) == (0.0, 200.0)
    assert part.column_bounds(1) == (200.0, 900.0)
    assert part.column_bounds(2) == (900.0, 1200.0)
    with pytest.raises(ValueError):
        ColumnPartition(0.0, 1200.0, 3, boundaries=(200.0,))  # wrong count
    with pytest.raises(ValueError):
        ColumnPartition(0.0, 1200.0, 3, boundaries=(900.0, 200.0))  # not sorted
    with pytest.raises(ValueError):
        ColumnPartition(0.0, 1200.0, 3, boundaries=(0.0, 900.0))  # on the edge


def test_adaptive_boundaries_deterministic_and_equivalent():
    cfg = _cfg(8, shard_mode="on", shards=3, shard_adaptive=True, shard_calibration=0.5)
    first = Scenario(cfg).run()
    second = Scenario(cfg).run()
    assert first.shard_stats["boundaries"] is not None
    assert first.shard_stats["boundaries"] == second.shard_stats["boundaries"]
    assert _fingerprint(first) == _fingerprint(second)
    # And the rebalanced run still matches the single engine exactly.
    assert _fingerprint(first) == _fingerprint(Scenario(_cfg(8)).run())


def test_cross_adaptive_byte_identical():
    result = Scenario(
        _cfg(9, shard_mode="cross", shards=3, shard_adaptive=True, shard_calibration=0.5)
    ).run()
    assert result.sent > 0
    assert result.shard_stats["boundaries"] is not None


def test_explicit_boundaries_any_split_same_trace():
    """The merged trace is a pure function of config + seed, not of the
    split geometry: two very different explicit splits, one answer."""
    lop = Scenario(
        _cfg(10, shard_mode="cross", shards=3, shard_boundaries=(150.0, 1050.0))
    ).run()
    mid = Scenario(
        _cfg(10, shard_mode="cross", shards=3, shard_boundaries=(500.0, 700.0))
    ).run()
    assert _fingerprint(lop) == _fingerprint(mid)


# ------------------------------------------- everything on, under faults
@pytest.mark.parametrize("seed", [11, 12])
def test_cross_all_features_faulted_byte_identical(seed):
    """Acceptance: piggybacking + shared plane + adaptive boundaries +
    slim queue, under loss and churn, across seeds — byte-identical."""
    cfg = _faulted(
        _cfg(
            seed,
            shard_mode="cross",
            shards=3,
            shard_adaptive=True,
            shard_calibration=0.5,
        )
    )
    result = Scenario(cfg).run()
    assert result.fault_counters["drops_injected"] > 0
    stats = result.shard_stats
    assert stats["piggyback"] is True
    if plane_supported():
        assert stats["plane"] is True
