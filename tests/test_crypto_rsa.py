"""Tests for the RSA implementation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rsa import (
    DecryptionError,
    MessageTooLong,
    generate_keypair,
)


@pytest.fixture(scope="module")
def key(rsa_keys):
    return rsa_keys[0]


@pytest.fixture(scope="module")
def other_key(rsa_keys):
    return rsa_keys[1]


def test_key_sizes(key):
    assert key.n.bit_length() == 512
    assert key.byte_size == 64
    assert key.public().byte_size == 64


def test_512_bit_block_is_64_bytes_paper_claim(key, rng):
    """The paper: trapdoor <= 64 bytes with a 512-bit key."""
    ciphertext = key.public().encrypt(b"src|loc|tag", rng=rng)
    assert len(ciphertext) == 64


def test_encrypt_decrypt_roundtrip(key, rng):
    message = b"hello anonymous world"
    assert key.decrypt(key.public().encrypt(message, rng=rng)) == message


def test_encrypt_empty_message(key, rng):
    assert key.decrypt(key.public().encrypt(b"", rng=rng)) == b""


def test_max_plaintext_boundary(key, rng):
    maximum = key.public().max_plaintext
    message = b"x" * maximum
    assert key.decrypt(key.public().encrypt(message, rng=rng)) == message
    with pytest.raises(MessageTooLong):
        key.public().encrypt(b"x" * (maximum + 1), rng=rng)


def test_encryption_is_randomized(key, rng):
    first = key.public().encrypt(b"same", rng=rng)
    second = key.public().encrypt(b"same", rng=rng)
    assert first != second


def test_decrypt_with_wrong_key_fails(key, other_key, rng):
    ciphertext = key.public().encrypt(b"secret", rng=rng)
    with pytest.raises(DecryptionError):
        other_key.decrypt(ciphertext)


def test_decrypt_wrong_length_rejected(key):
    with pytest.raises(DecryptionError):
        key.decrypt(b"\x00" * 63)


def test_hybrid_roundtrip_long_message(key, rng):
    message = bytes(range(256)) * 4
    ciphertext = key.public().encrypt_hybrid(message, rng=rng)
    assert key.decrypt_hybrid(ciphertext) == message
    assert len(ciphertext) == 64 + len(message)


def test_hybrid_wrong_key_fails(key, other_key, rng):
    ciphertext = key.public().encrypt_hybrid(b"payload" * 30, rng=rng)
    with pytest.raises(DecryptionError):
        other_key.decrypt_hybrid(ciphertext)


def test_hybrid_truncated_rejected(key):
    with pytest.raises(DecryptionError):
        key.decrypt_hybrid(b"\x01" * 10)


def test_sign_verify(key):
    signature = key.sign(b"message")
    assert key.public().verify(b"message", signature)


def test_signature_rejects_tampered_message(key):
    signature = key.sign(b"message")
    assert not key.public().verify(b"messagf", signature)


def test_signature_rejects_tampered_signature(key):
    signature = bytearray(key.sign(b"message"))
    signature[5] ^= 0x01
    assert not key.public().verify(b"message", bytes(signature))


def test_signature_wrong_key_rejected(key, other_key):
    signature = key.sign(b"message")
    assert not other_key.public().verify(b"message", signature)


def test_verify_wrong_length_is_false_not_raise(key):
    assert not key.public().verify(b"m", b"short")


def test_raw_permutation_roundtrip(key):
    value = 123456789
    assert key.apply(key.public().apply(value)) == value


def test_raw_permutation_range_checked(key):
    with pytest.raises(Exception):
        key.public().apply(key.n)


def test_public_key_serialization_stable(key):
    pub = key.public()
    assert pub.to_bytes() == pub.to_bytes()
    assert len(pub.fingerprint()) == 8


def test_generate_rejects_odd_bits():
    with pytest.raises(ValueError):
        generate_keypair(511)
    with pytest.raises(ValueError):
        generate_keypair(128)


def test_keygen_deterministic_from_rng():
    a = generate_keypair(512, random.Random(3))
    b = generate_keypair(512, random.Random(3))
    assert a.n == b.n


@given(st.binary(min_size=0, max_size=53))
@settings(max_examples=30, deadline=None)
def test_roundtrip_property(rsa_keys, data):
    key = rsa_keys[2]
    rng = random.Random(0)
    assert key.decrypt(key.public().encrypt(data, rng=rng)) == data


# ------------------------------------------------------ CRT precompute (PR 3)
def test_crt_precompute_matches_schoolbook(key):
    """``apply`` with construction-time dp/dq/q_inv equals the schoolbook
    ``value^d mod n`` for values across the domain."""
    for value in (0, 1, 2, 0x1234567890ABCDEF, key.n - 1):
        assert key.apply(value) == pow(value, key.d, key.n)


def test_crt_parameters_are_precomputed(key):
    assert key._dp == key.d % (key.p - 1)
    assert key._dq == key.d % (key.q - 1)
    assert (key._q_inv * key.q) % key.p == 1


def test_public_fingerprint_matches_derived_public(key):
    assert key.public_fingerprint == key.public().fingerprint()


def test_public_fingerprint_is_cached_and_stable(key):
    public = key.public()
    first = public.fingerprint()
    assert public.fingerprint() is first  # lazy memo on the frozen dataclass
    assert public.fingerprint() == key.public().fingerprint()


def test_precompute_survives_dataclass_semantics(key):
    """The private cache fields (compare=False/repr=False) must not leak
    into equality or the repr of the frozen dataclass."""
    clone = type(key)(n=key.n, e=key.e, d=key.d, p=key.p, q=key.q)
    assert clone == key
    assert "_dp" not in repr(key)
