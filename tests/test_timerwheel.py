"""Unit tests for the scheduler backends (repro.sim.timerwheel).

These drive the backends directly with hand-built entries; engine-level
behaviour (clock contract, end-to-end equivalence) lives in
``test_scheduler_modes.py``.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Event
from repro.sim.timerwheel import (
    DEFAULT_RESOLUTION,
    DEFAULT_SLOTS,
    SCHEDULER_MODES,
    CrossScheduler,
    HeapScheduler,
    SchedulerCoherenceError,
    TimerWheelScheduler,
    make_scheduler,
    validate_scheduler_mode,
)


def _entry(time: float, priority: int = 0, seq: int = 0) -> tuple:
    return (time, priority, seq, Event(time, priority, seq, lambda: None))


def _drain(sched) -> list:
    out = []
    while True:
        head = sched.pop()
        if head is None:
            return out
        out.append(head[:3])


# ------------------------------------------------------------ construction
def test_validate_scheduler_mode():
    for mode in SCHEDULER_MODES:
        assert validate_scheduler_mode(mode) == mode
    with pytest.raises(ValueError):
        validate_scheduler_mode("calendar")


def test_make_scheduler_builds_each_backend():
    assert isinstance(make_scheduler("heap"), HeapScheduler)
    wheel = make_scheduler("wheel", resolution=1e-3, slots=16)
    assert isinstance(wheel, TimerWheelScheduler)
    assert wheel.resolution == 1e-3 and wheel.slots == 16
    cross = make_scheduler("cross")
    assert isinstance(cross, CrossScheduler)
    assert cross.wheel.resolution == DEFAULT_RESOLUTION
    assert cross.wheel.slots == DEFAULT_SLOTS


def test_wheel_rejects_degenerate_geometry():
    with pytest.raises(ValueError):
        TimerWheelScheduler(resolution=0.0)
    with pytest.raises(ValueError):
        TimerWheelScheduler(slots=1)


# ----------------------------------------------------------------- ordering
@pytest.mark.parametrize("mode", SCHEDULER_MODES)
def test_pop_order_is_full_key_order(mode):
    sched = make_scheduler(mode, resolution=1e-3, slots=8)
    entries = [
        _entry(0.005, 0, 3),   # near bucket
        _entry(0.005, -1, 4),  # same tick, higher priority -> earlier
        _entry(0.0001, 0, 1),  # sub-resolution: tick 0
        _entry(0.5, 0, 2),     # far beyond the 8-slot window -> overflow
        _entry(0.005, 0, 5),   # same (time, priority): seq breaks the tie
    ]
    for entry in entries:
        sched.push(entry)
    assert _drain(sched) == sorted(entry[:3] for entry in entries)


def test_wheel_sub_resolution_push_lands_in_ready():
    """Scheduling below the drained tick (same-instant callbacks) must
    compete in the ready heap, not be binned into an already-passed
    bucket."""
    sched = TimerWheelScheduler(resolution=1e-3, slots=8)
    sched.push(_entry(0.0015, seq=1))
    first = sched.pop()
    assert first is not None and first[2] == 1
    # tick(0.0016) == 1 == drained tick: must go to ready, not the wheel.
    sched.push(_entry(0.0016, seq=2))
    assert sched.stats()["ready"] == 1
    second = sched.pop()
    assert second is not None and second[2] == 2


def test_wheel_overflow_migration_and_rebase_jump():
    """A sparse far-future population re-bases the window directly onto
    the overflow minimum instead of stepping bucket by bucket."""
    sched = TimerWheelScheduler(resolution=1e-3, slots=8)
    far = [_entry(1.0 + i, seq=i + 1) for i in range(3)]  # ticks 1000, 2000, 3000
    for entry in far:
        sched.push(entry)
    stats = sched.stats()
    assert stats["overflow"] == 3 and stats["wheel"] == 0
    assert _drain(sched) == [entry[:3] for entry in far]
    assert sched.rebases == 3  # one jump per isolated far cluster


def test_wheel_len_tracks_cancelled_until_collected():
    sched = TimerWheelScheduler(resolution=1e-3, slots=8)
    entries = [_entry(0.002, seq=i) for i in range(4)]
    for entry in entries:
        sched.push(entry)
    entries[1][3].cancelled = True
    entries[2][3].cancelled = True
    assert len(sched) == 4  # lazy: corpses still counted in the backlog
    assert [e[2] for e in (sched.pop(), sched.pop())] == [0, 3]
    assert sched.pop() is None
    assert len(sched) == 0


@pytest.mark.parametrize("mode", SCHEDULER_MODES)
def test_compact_removes_corpses_and_preserves_order(mode):
    sched = make_scheduler(mode, resolution=1e-3, slots=8)
    entries = [_entry(0.001 * (i % 20) + 0.0001 * i, seq=i) for i in range(60)]
    for entry in entries:
        sched.push(entry)
    live = []
    for i, entry in enumerate(entries):
        if i % 3:
            entry[3].cancelled = True
        else:
            live.append(entry)
    sched.compact()
    assert len(sched) == len(live)
    assert _drain(sched) == sorted(entry[:3] for entry in live)


def test_wheel_compact_leaves_stale_occupancy_markers_harmless():
    """compact() empties buckets but leaves their ticks in the occupancy
    heap; _advance must skip the stale markers without desync."""
    sched = TimerWheelScheduler(resolution=1e-3, slots=16)
    doomed = [_entry(0.001 * (i + 1), seq=i + 1) for i in range(10)]
    survivor = _entry(0.012, seq=99)
    for entry in doomed:
        sched.push(entry)
    sched.push(survivor)
    for entry in doomed:
        entry[3].cancelled = True
    sched.compact()
    assert sched.pop()[:3] == survivor[:3]
    assert sched.pop() is None


@pytest.mark.parametrize("mode", SCHEDULER_MODES)
def test_iter_events_yields_live_events_only(mode):
    sched = make_scheduler(mode, resolution=1e-3, slots=8)
    keep = _entry(0.001, seq=1)
    near_dead = _entry(0.002, seq=2)
    far = _entry(5.0, seq=3)
    for entry in (keep, near_dead, far):
        sched.push(entry)
    near_dead[3].cancelled = True
    assert {event.seq for event in sched.iter_events()} == {1, 3}


# ------------------------------------------------------------- equivalence
def test_wheel_matches_heap_on_randomized_churn():
    """Property check at the backend level: interleaved pushes, pops and
    cancellations produce the identical pop sequence on both backends."""
    rnd = random.Random(2024)
    wheel = TimerWheelScheduler(resolution=1e-3, slots=32)
    heap = HeapScheduler()
    seq = 0
    pending = []
    wheel_popped, heap_popped = [], []
    now = 0.0
    for _ in range(3000):
        action = rnd.random()
        if action < 0.55 or not pending:
            seq += 1
            time = now + rnd.choice([0.0, 1e-4, 5e-3, 0.03, 2.0]) * rnd.random()
            entry = _entry(time, rnd.randint(-2, 2), seq)
            wheel.push(entry)
            heap.push(entry)
            pending.append(entry)
        elif action < 0.85:
            a = wheel.pop()
            b = heap.pop()
            assert (a and a[:3]) == (b and b[:3])
            if a is not None:
                now = a[0]
                a[3].cancelled = True  # consumed, as the engine marks it
                wheel_popped.append(a[:3])
                heap_popped.append(b[:3])
                pending.remove(a)
        else:
            victim = rnd.choice(pending)
            victim[3].cancelled = True
            pending.remove(victim)
    assert wheel_popped == heap_popped
    while True:
        a, b = wheel.pop(), heap.pop()
        assert (a and a[:3]) == (b and b[:3])
        if a is None:
            break
        a[3].cancelled = True


# -------------------------------------------------------------- cross mode
def test_cross_mode_detects_injected_divergence():
    """Tampering with one side (a push the other never saw) must raise
    SchedulerCoherenceError on the next peek/pop."""
    cross = make_scheduler("cross", resolution=1e-3, slots=8)
    cross.push(_entry(0.002, seq=1))
    cross.heap.push(_entry(0.001, seq=2))  # heap-only rogue entry
    with pytest.raises(SchedulerCoherenceError):
        cross.pop()


def test_cross_mode_detects_one_sided_drain():
    cross = make_scheduler("cross", resolution=1e-3, slots=8)
    cross.push(_entry(0.002, seq=1))
    cross.wheel.pop()  # consume on the wheel side only
    with pytest.raises(SchedulerCoherenceError):
        cross.peek()


def test_cross_stats_surface_both_backends():
    cross = make_scheduler("cross", resolution=1e-3, slots=8)
    cross.push(_entry(0.002, seq=1))
    cross.push(_entry(9.0, seq=2))
    stats = cross.stats()
    assert stats["backlog"] == 2
    assert stats["heap_backlog"] == 2
    assert stats["overflow"] == 1
