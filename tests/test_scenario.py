"""Integration tests: full scenarios under every protocol.

These run short versions of the paper's simulation model and assert the
qualitative properties the evaluation section reports.  They are the
slowest tests in the suite (seconds each).
"""

from __future__ import annotations

import pytest

from repro.experiments.scenario import Scenario, ScenarioConfig, run_scenario


def _short(protocol, **kwargs):
    defaults = dict(
        protocol=protocol,
        num_nodes=30,
        sim_time=10.0,
        traffic_start=(1.0, 3.0),
        num_flows=10,
        num_senders=8,
        seed=5,
    )
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


def test_config_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(protocol="flooding")
    with pytest.raises(ValueError):
        ScenarioConfig(num_nodes=1)
    with pytest.raises(ValueError):
        ScenarioConfig(sim_time=0)
    with pytest.raises(ValueError):
        ScenarioConfig(placement="poisson")
    with pytest.raises(ValueError):
        ScenarioConfig(placement="clusters", num_clusters=0)
    with pytest.raises(ValueError):
        ScenarioConfig(placement="clusters", cluster_radius=0.0)
    with pytest.raises(ValueError):
        ScenarioConfig(flow_locality=-1.0)


def test_clustered_placement_confines_nodes():
    """node_id % num_clusters picks the band; starts and waypoints stay
    within cluster_radius of its center line."""
    config = _short(
        "gpsr",
        num_nodes=40,
        width=8000.0,
        sim_time=1.0,
        placement="clusters",
        num_clusters=4,
        cluster_radius=300.0,
    )
    scenario = Scenario(config)
    pitch = config.width / config.num_clusters
    for node in scenario.nodes:
        center = (node.node_id % 4 + 0.5) * pitch
        for t in (0.0, 0.5, 1.0):
            x = node.mobility.position_at(t).x
            assert abs(x - center) <= 300.0 + 1e-9


def test_flow_locality_scenario_runs_and_stays_deterministic():
    config = _short(
        "agfw",
        num_nodes=40,
        sim_time=5.0,
        placement="clusters",
        num_clusters=2,
        cluster_radius=400.0,
        flow_locality=900.0,
    )
    a = run_scenario(config)
    b = run_scenario(config)
    assert a.sent > 0 and a.delivered > 0
    assert (a.sent, a.delivered, a.frames_on_air) == (b.sent, b.delivered, b.frames_on_air)


@pytest.mark.parametrize("protocol", ["gpsr", "agfw", "agfw-noack"])
def test_scenario_delivers_majority(protocol):
    result = run_scenario(_short(protocol))
    assert result.sent > 0
    assert result.delivery_fraction > 0.6
    assert result.mean_latency > 0


def test_scenario_deterministic_from_seed():
    a = run_scenario(_short("agfw"))
    b = run_scenario(_short("agfw"))
    assert a.sent == b.sent
    assert a.delivered == b.delivered
    assert a.mean_latency == pytest.approx(b.mean_latency)


def test_scenario_seeds_differ():
    a = run_scenario(_short("agfw", seed=5))
    b = run_scenario(_short("agfw", seed=6))
    assert (a.sent, a.delivered, a.frames_on_air) != (b.sent, b.delivered, b.frames_on_air)


def test_agfw_ack_recovers_more_than_noack():
    ack = run_scenario(_short("agfw", num_nodes=40, sim_time=15.0))
    noack = run_scenario(_short("agfw-noack", num_nodes=40, sim_time=15.0))
    assert ack.delivery_fraction >= noack.delivery_fraction


def test_static_scenario_supported():
    result = run_scenario(_short("gpsr", static=True))
    assert result.delivery_fraction > 0.5


def test_router_totals_aggregate():
    result = run_scenario(_short("agfw"))
    assert result.router_totals.originated == result.sent
    assert result.router_totals.beacons_sent > 0
    assert result.router_totals.forwarded >= 0


def test_sniffer_scenario_wiring():
    scenario = Scenario(_short("gpsr", with_sniffer=True, sim_time=5.0))
    scenario.run()
    assert scenario.sniffer is not None
    assert len(scenario.sniffer) > 0


def test_agfw_overrides_applied():
    scenario = Scenario(
        _short("agfw", agfw_overrides={"next_hop_strategy": "best_position"})
    )
    router = scenario.nodes[0].router
    from repro.core.freshness import best_position

    assert router.strategy is best_position


def test_aant_scenario_enables_authenticator():
    scenario = Scenario(_short("agfw", aant_ring_size=3, sim_time=5.0))
    assert all(n.router.authenticator is not None for n in scenario.nodes)
    result = scenario.run()
    assert result.delivery_fraction > 0.3  # verify delays cost a little


def test_real_crypto_scenario_end_to_end():
    """Everything real: RSA keygen, certificates, trapdoors."""
    result = run_scenario(
        _short(
            "agfw",
            num_nodes=20,
            sim_time=8.0,
            num_flows=4,
            num_senders=4,
            real_crypto=True,
        )
    )
    # 20 random nodes in 1500x300 m is still sparse: expect most, not all.
    assert result.delivery_fraction > 0.5


def test_wallclock_recorded():
    result = run_scenario(_short("gpsr", sim_time=3.0))
    assert result.wallclock_seconds > 0


def test_result_row_formatting():
    result = run_scenario(_short("gpsr", sim_time=3.0))
    row = result.row()
    assert "gpsr" in row and "pdf=" in row
