"""Failure-injection tests: how each scheme copes when the path breaks.

A relay is yanked out of the topology mid-flow (teleported out of range,
mimicking a crash or sudden departure).  The recovery stories differ by
design and the tests pin them down:

* GPSR: the 802.11 unicast fails after its retry limit, the router
  evicts the dead neighbor and re-routes.
* AGFW with NL-ACK: the ACK never comes, the committed forwarder's
  pseudonym is evicted from the ANT, and the packet re-routes.
* AGFW-noACK: the loss is silent and permanent — exactly why Fig 1(a)
  needs the ACK.
"""

from __future__ import annotations

import pytest

from repro.core.config import AgfwConfig
from repro.geo.vec import Position
from repro.routing.gpsr import GpsrConfig
from tests.conftest import build_static_net

# A diamond: 0 -> {1 (short path), 2 (detour)} -> 3.  Node 1 will die.
DIAMOND = [
    Position(0, 0),
    Position(200, 0),     # 1: preferred relay (201 m from the destination)
    Position(190, 140),   # 2: backup relay (242 m from the destination)
    Position(400, 20),    # 3: destination (>250 m from the source)
]
FAR_AWAY = Position(10_000.0, 10_000.0)


def _kill_node(net, index):
    """Teleport a node out of range and silence its beacons."""
    net.nodes[index].mobility.move_to(FAR_AWAY)


def test_diamond_geometry_sane():
    src, relay, backup, dest = DIAMOND
    assert src.distance_to(dest) > 250  # multi-hop required
    assert src.distance_to(relay) <= 250 and relay.distance_to(dest) <= 250
    assert src.distance_to(backup) <= 250 and backup.distance_to(dest) <= 250
    # The dead relay is the greedy favourite (closer to the destination).
    assert relay.distance_to(dest) < backup.distance_to(dest)


def test_gpsr_reroutes_after_relay_death():
    net = build_static_net(DIAMOND, protocol="gpsr")
    net.sim.run(until=3.0)  # tables warm; node 1 is everyone's favourite
    _kill_node(net, 1)
    net.sim.schedule(0.1, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=10.0)
    assert [d[0] for d in net.deliveries()] == [3]
    # The dead relay was evicted from the source's table by the failure.
    assert "node-1" not in net.nodes[0].router.table


def test_agfw_ack_reroutes_after_relay_death():
    net = build_static_net(
        DIAMOND, protocol="agfw",
        agfw_config=AgfwConfig(ack_timeout=0.02, max_retransmissions=2),
    )
    net.sim.run(until=3.0)
    _kill_node(net, 1)
    net.sim.schedule(0.1, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=10.0)
    assert [d[0] for d in net.deliveries()] == [3]
    source = net.nodes[0].router
    assert source.acks.retransmissions > 0  # it noticed the silence
    assert source.acks.give_ups > 0  # then re-routed via node 2


def test_agfw_noack_loses_packet_after_relay_death():
    net = build_static_net(
        DIAMOND, protocol="agfw", agfw_config=AgfwConfig(enable_ack=False)
    )
    net.sim.run(until=3.0)
    _kill_node(net, 1)
    net.sim.schedule(0.1, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=10.0)
    assert net.deliveries() == []  # silent, unrecovered loss


def test_all_schemes_recover_via_beacon_timeout_eventually():
    """Even without per-packet recovery, the dead relay ages out of the
    tables and *later* packets take the living path."""
    for protocol, config_kw in (
        ("gpsr", {"gpsr_config": GpsrConfig()}),
        ("agfw", {"agfw_config": AgfwConfig(enable_ack=False)}),
    ):
        net = build_static_net(DIAMOND, protocol=protocol, **config_kw)
        net.sim.run(until=3.0)
        _kill_node(net, 1)
        # Wait beyond the neighbor timeout, then send.
        net.sim.schedule(6.0, lambda net=net: net.nodes[0].router.send_data("node-3", 64))
        net.sim.run(until=14.0)
        assert [d[0] for d in net.deliveries()] == [3], protocol


def test_destination_death_is_not_a_false_delivery():
    """Killing the destination itself must never produce an app.recv."""
    net = build_static_net(
        DIAMOND, protocol="agfw",
        agfw_config=AgfwConfig(ack_timeout=0.02, max_retransmissions=1),
    )
    net.sim.run(until=3.0)
    _kill_node(net, 3)
    net.sim.schedule(0.1, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=10.0)
    assert net.deliveries() == []


# ------------------------------------------------ genuine crash (FaultPlan)
# The same diamond stories, but through repro.faults instead of the
# teleport hack: node 1 *crashes* (radio off, MAC wiped, beacons stop).
def test_gpsr_reroutes_after_relay_crash():
    from repro.faults import FaultPlan

    net = build_static_net(DIAMOND, protocol="gpsr", fault_plan=FaultPlan().crash(1, at=3.0))
    net.sim.run(until=3.0)
    net.sim.schedule(0.1, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=10.0)
    assert [d[0] for d in net.deliveries()] == [3]
    assert "node-1" not in net.nodes[0].router.table


def test_agfw_ack_reroutes_after_relay_crash():
    from repro.faults import FaultPlan

    net = build_static_net(
        DIAMOND, protocol="agfw",
        agfw_config=AgfwConfig(ack_timeout=0.02, max_retransmissions=2),
        fault_plan=FaultPlan().crash(1, at=3.0),
    )
    net.sim.run(until=3.0)
    net.sim.schedule(0.1, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=10.0)
    assert [d[0] for d in net.deliveries()] == [3]
    source = net.nodes[0].router
    assert source.acks.retransmissions > 0
    assert source.acks.give_ups > 0


def test_agfw_noack_loses_packet_after_relay_crash():
    from repro.faults import FaultPlan

    net = build_static_net(
        DIAMOND, protocol="agfw", agfw_config=AgfwConfig(enable_ack=False),
        fault_plan=FaultPlan().crash(1, at=3.0),
    )
    net.sim.run(until=3.0)
    net.sim.schedule(0.1, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=10.0)
    assert net.deliveries() == []


def test_recovered_relay_carries_traffic_again():
    """After the relay reboots it re-beacons from empty state, neighbors
    re-learn it, and a later packet goes through."""
    from repro.faults import FaultPlan

    net = build_static_net(
        DIAMOND, protocol="agfw",
        agfw_config=AgfwConfig(ack_timeout=0.02, max_retransmissions=2),
        fault_plan=FaultPlan().pause(1, at=3.0, duration=4.0),
    )
    net.sim.run(until=3.0)
    net.sim.schedule(6.0, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=16.0)
    assert [d[0] for d in net.deliveries()] == [3]
    assert net.fault_metrics.crashes == 1 and net.fault_metrics.recoveries == 1


# ------------------------------------------------- recovery under channel loss
@pytest.mark.parametrize("loss_model", ["bernoulli", "gilbert", "distance"])
def test_diamond_recovery_survives_channel_loss(loss_model):
    """The relay dies *and* the channel is lossy; GPSR and AGFW-ACK still
    recover the packet, because both have a retry loop to lean on."""
    for protocol, config_kw in (
        ("gpsr", {}),
        ("agfw", {"agfw_config": AgfwConfig(ack_timeout=0.02, max_retransmissions=4)}),
    ):
        net = build_static_net(
            DIAMOND, protocol=protocol,
            loss_model=loss_model, loss_rate=0.15,
            **config_kw,
        )
        net.sim.run(until=3.0)
        _kill_node(net, 1)
        net.sim.schedule(0.1, lambda net=net: net.nodes[0].router.send_data("node-3", 64))
        net.sim.run(until=12.0)
        assert [d[0] for d in net.deliveries()] == [3], (protocol, loss_model)
        assert net.fault_metrics.loss_draws > 0


@pytest.mark.parametrize("loss_model", ["bernoulli", "gilbert"])
def test_agfw_noack_has_no_answer_to_channel_loss(loss_model):
    """Under a *harsh* channel the noACK ablation cannot recover a lost
    transfer: with the relay dead and heavy loss it delivers nothing
    where the ACK variant (previous test, milder dose) retries through."""
    net = build_static_net(
        DIAMOND, protocol="agfw",
        agfw_config=AgfwConfig(enable_ack=False),
        loss_model=loss_model, loss_rate=0.85, seed=42,
    )
    net.sim.run(until=3.0)
    _kill_node(net, 1)
    net.sim.schedule(0.1, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=12.0)
    assert net.deliveries() == []
    assert net.fault_metrics.drops_injected > 0


# ------------------------------------------------------- faulted determinism
def test_faulted_runs_are_deterministic_per_seed():
    """Loss + churn runs replay byte-identically under the same seed."""
    from repro.experiments.scenario import ScenarioConfig, run_scenario
    from repro.faults import FaultPlan

    plan = FaultPlan.churn(range(12), sim_time=4.0, seed=77, rate=1.5, mean_downtime=0.5)
    cfg = ScenarioConfig(
        protocol="agfw", num_nodes=12, sim_time=4.0, seed=77,
        loss_model="gilbert", loss_rate=0.2, fault_plan=plan,
    )
    first = run_scenario(cfg)
    second = run_scenario(cfg)
    assert first.fault_counters == second.fault_counters
    assert (first.sent, first.delivered) == (second.sent, second.delivered)
    assert first.fault_counters["loss_draws"] > 0
    assert first.fault_counters["crashes"] > 0


def test_mass_failure_partitions_network():
    net = build_static_net(DIAMOND, protocol="gpsr")
    net.sim.run(until=3.0)
    _kill_node(net, 1)
    _kill_node(net, 2)
    net.sim.schedule(0.1, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=10.0)
    assert net.deliveries() == []
    drops = net.nodes[0].router.stats
    assert drops.drops_deadend + drops.drops_mac >= 1
