"""Tests for primality testing and prime generation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.primes import generate_prime, is_probable_prime

KNOWN_PRIMES = [2, 3, 5, 7, 97, 101, 7919, 104729, 2**31 - 1]
KNOWN_COMPOSITES = [1, 4, 9, 100, 7917, 2**31, 561, 41041, 825265]  # incl. Carmichael


@pytest.mark.parametrize("p", KNOWN_PRIMES)
def test_known_primes_accepted(p):
    assert is_probable_prime(p)


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites_rejected(n):
    assert not is_probable_prime(n)


def test_negative_and_small():
    assert not is_probable_prime(-7)
    assert not is_probable_prime(0)
    assert not is_probable_prime(1)


def test_large_known_prime():
    # 2^521 - 1 is a Mersenne prime.
    assert is_probable_prime(2**521 - 1)


def test_large_known_composite():
    assert not is_probable_prime((2**127 - 1) * (2**61 - 1))


def test_generate_prime_exact_bits():
    rng = random.Random(0)
    for bits in (16, 64, 256):
        p = generate_prime(bits, rng)
        assert p.bit_length() == bits
        assert is_probable_prime(p)


def test_generate_prime_is_odd():
    rng = random.Random(1)
    assert generate_prime(32, rng) % 2 == 1


def test_generate_prime_rejects_tiny_sizes():
    with pytest.raises(ValueError):
        generate_prime(4, random.Random(0))


def test_generate_prime_deterministic_from_seed():
    assert generate_prime(64, random.Random(5)) == generate_prime(64, random.Random(5))


@given(st.integers(min_value=2, max_value=100000))
@settings(max_examples=200)
def test_matches_trial_division(n):
    def trial(n: int) -> bool:
        if n < 2:
            return False
        for d in range(2, int(n**0.5) + 1):
            if n % d == 0:
                return False
        return True

    assert is_probable_prime(n) == trial(n)
