"""Baseline gating, incremental cache, and SARIF reporter tests."""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro.analysis.baseline import Baseline, normalize_path
from repro.analysis.cli import main
from repro.analysis.core import ANALYSIS_VERSION, Finding
from repro.analysis.engine import analyze_paths
from repro.analysis.report import render_sarif

from tests.analysis_helpers import write_fixture

DIRTY = "import random\n\nvalue = random.random()\n"


def _tree(tmp_path, name="a.py", source=DIRTY) -> Path:
    return write_fixture(tmp_path, f"src/repro/{name}", source)


# ------------------------------------------------------------------ baseline
def test_normalize_path_anchors_and_fallback():
    assert normalize_path("/home/ci/repo/src/repro/core/als.py") == "src/repro/core/als.py"
    assert normalize_path("src/repro/core/als.py") == "src/repro/core/als.py"
    assert normalize_path("/tmp/pytest-1/case0/tests/test_x.py") == "tests/test_x.py"
    assert normalize_path("/opt/elsewhere/tool.py") == "elsewhere/tool.py"


def test_baseline_partition_consumes_counts():
    findings = [
        Finding("src/repro/a.py", 3, 1, "DET-001", "m"),
        Finding("src/repro/a.py", 9, 1, "DET-001", "m"),
    ]
    snippet_of = lambda f: "value = random.random()"  # identical snippets
    base = Baseline.from_findings(findings[:1], snippet_of)
    new, baselined = base.partition(findings, snippet_of)
    # One allowed occurrence: the first match is debt, the second is new.
    assert len(baselined) == 1 and len(new) == 1


def test_baseline_survives_line_moves_but_not_edits(tmp_path):
    path = _tree(tmp_path)
    base_path = tmp_path / "baseline.json"
    result = analyze_paths([str(path)], select=["DET-001"])
    Baseline.from_findings(
        result.findings, lambda f: "value = random.random()"
    ).save(base_path)
    base = Baseline.load(base_path)

    # Same snippet, different line (a comment was inserted above): still debt.
    moved = [Finding(str(path), 30, 1, "DET-001", "m")]
    new, baselined = base.partition(moved, lambda f: "value = random.random()")
    assert new == [] and baselined == moved

    # The flagged code itself changed: the finding must resurface.
    edited = [Finding(str(path), 3, 1, "DET-001", "m")]
    new, baselined = base.partition(edited, lambda f: "value = random.choice(x)")
    assert baselined == [] and new == edited


def test_baseline_roundtrip_and_schema(tmp_path):
    base_path = tmp_path / "baseline.json"
    Baseline(entries={"src/a.py|DET-001|x = 1": 2}).save(base_path)
    payload = json.loads(base_path.read_text())
    assert payload["schema"] == 1
    assert payload["analysis_version"] == ANALYSIS_VERSION
    assert Baseline.load(base_path).entries == {"src/a.py|DET-001|x = 1": 2}


def test_cli_baseline_gate_and_update(tmp_path):
    path = _tree(tmp_path)
    base_path = tmp_path / "baseline.json"

    # Without a baseline the dirty tree fails the gate.
    assert main([str(path), "--select", "DET-001"], stream=io.StringIO()) == 1

    # --update-baseline pins the debt and exits 0.
    out = io.StringIO()
    assert (
        main(
            [str(path), "--select", "DET-001",
             "--baseline", str(base_path), "--update-baseline"],
            stream=out,
        )
        == 0
    )
    assert "baseline updated with 1 finding" in out.getvalue()

    # Gated run is now clean, with the finding reported as baselined.
    out = io.StringIO()
    assert (
        main([str(path), "--select", "DET-001", "--baseline", str(base_path)],
             stream=out)
        == 0
    )
    assert "1 baselined" in out.getvalue()

    # A *second* violation is new debt and fails the gate again.
    write_fixture(tmp_path, "src/repro/a.py", DIRTY + "\nother = random.random()\n")
    assert (
        main([str(path), "--select", "DET-001", "--baseline", str(base_path)],
             stream=io.StringIO())
        == 1
    )


def test_cli_update_baseline_requires_baseline_path(tmp_path):
    path = _tree(tmp_path)
    assert main([str(path), "--update-baseline"], stream=io.StringIO()) == 2


# --------------------------------------------------------------------- cache
def test_cache_cold_then_warm(tmp_path):
    _tree(tmp_path, "a.py")
    _tree(tmp_path, "b.py", "TABLE = (1, 2, 3)\n")
    cache = tmp_path / "cache.json"
    root = str(tmp_path / "src")

    cold = analyze_paths([root], select=["DET-001"], cache_path=cache)
    assert (cold.cache_hits, cold.cache_misses) == (0, 2)

    warm = analyze_paths([root], select=["DET-001"], cache_path=cache)
    assert (warm.cache_hits, warm.cache_misses) == (2, 0)
    assert [f.as_dict() for f in warm.findings] == [f.as_dict() for f in cold.findings]
    assert warm.exit_code == cold.exit_code == 1


def test_cache_invalidates_only_the_edited_file(tmp_path):
    _tree(tmp_path, "a.py")
    _tree(tmp_path, "b.py", "TABLE = (1, 2, 3)\n")
    cache = tmp_path / "cache.json"
    root = str(tmp_path / "src")
    analyze_paths([root], select=["DET-001"], cache_path=cache)

    write_fixture(tmp_path, "src/repro/b.py", "TABLE = (1, 2, 3, 4)\n")
    rerun = analyze_paths([root], select=["DET-001"], cache_path=cache)
    assert (rerun.cache_hits, rerun.cache_misses) == (1, 1)


def test_cache_discarded_when_cross_module_facts_change(tmp_path):
    """Soundness: file A's cached findings depend on summaries from file
    B.  Editing *B* so that its helper now returns an identity must not
    serve A's stale 'clean' result — the facts key changes and the whole
    cache is discarded."""
    write_fixture(
        tmp_path,
        "src/repro/fixpkg/__init__.py",
        "",
    )
    write_fixture(
        tmp_path,
        "src/repro/fixpkg/helpers.py",
        "def node_tag(node):\n    return 'fixed'\n",
    )
    write_fixture(
        tmp_path,
        "src/repro/fixpkg/sender.py",
        "from repro.net.packet import Packet\n"
        "from repro.fixpkg.helpers import node_tag\n\n\n"
        "class Probe(Packet):\n    sender: str = ''\n\n\n"
        "def announce(node, mac):\n"
        "    mac.send(Probe(sender=node_tag(node)))\n",
    )
    cache = tmp_path / "cache.json"
    root = str(tmp_path / "src")
    clean = analyze_paths([root], select=["ANON-001"], cache_path=cache)
    assert clean.findings == [] and clean.cache_misses == 3

    # The edit is in helpers.py, but sender.py is where the (previously
    # cached as clean) finding must now appear.
    write_fixture(
        tmp_path,
        "src/repro/fixpkg/helpers.py",
        "def node_tag(node):\n    return node.identity\n",
    )
    rerun = analyze_paths([root], select=["ANON-001"], cache_path=cache)
    assert [f.rule_id for f in rerun.findings] == ["ANON-001"]
    assert rerun.findings[0].path.endswith("sender.py")
    assert rerun.cache_hits == 0  # facts key changed: no stale entry served


def test_cli_cache_flag_reports_hits(tmp_path):
    path = _tree(tmp_path)
    cache = tmp_path / "cache.json"
    main([str(path), "--select", "DET-001", "--cache", str(cache)],
         stream=io.StringIO())
    out = io.StringIO()
    main([str(path), "--select", "DET-001", "--cache", str(cache)], stream=out)
    assert "[cache: 1 hits, 0 misses]" in out.getvalue()


# --------------------------------------------------------------------- sarif
def test_sarif_structure_and_levels(tmp_path):
    path = _tree(
        tmp_path,
        "mixed.py",
        "import random\n\n"
        "a = random.random()\n"
        "b = random.random()  # repro: noqa[DET-001]\n",
    )
    result = analyze_paths([str(path)], select=["DET-001"])
    result.baselined = [Finding(str(path), 99, 1, "DET-001", "old debt")]
    sarif = json.loads(render_sarif(result))

    assert sarif["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in sarif["$schema"]
    (run,) = sarif["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert driver["version"] == ANALYSIS_VERSION
    rule_ids = {rule["id"] for rule in driver["rules"]}
    assert {"DET-001", "DET-009", "DET-012", "ANON-001", "ANON-002"} <= rule_ids

    by_level = {}
    for row in run["results"]:
        by_level.setdefault(row["level"], []).append(row)
    assert len(by_level["error"]) == 1  # the active finding
    notes = by_level["note"]
    assert len(notes) == 2  # baselined + suppressed
    suppressed_rows = [row for row in notes if "suppressions" in row]
    assert len(suppressed_rows) == 1
    assert suppressed_rows[0]["suppressions"] == [{"kind": "inSource"}]

    (error_row,) = by_level["error"]
    location = error_row["locations"][0]["physicalLocation"]
    assert location["region"]["startLine"] == 3
    assert location["artifactLocation"]["uri"].endswith("mixed.py")


def test_cli_sarif_output_parses(tmp_path):
    path = _tree(tmp_path)
    out = io.StringIO()
    assert main([str(path), "--select", "DET-001", "--format", "sarif"],
                stream=out) == 1
    payload = json.loads(out.getvalue())
    assert payload["version"] == "2.1.0"
    assert payload["runs"][0]["results"]
