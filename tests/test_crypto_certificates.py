"""Tests for the CA / certificate / keystore substrate."""

from __future__ import annotations

import random

import pytest

from repro.crypto.certificates import CertificateAuthority, CertificateError, KeyStore


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority(rng=random.Random(11), key_bits=512)


def test_issue_and_verify(ca, rsa_keys):
    cert = ca.issue("alice", rsa_keys[0].public())
    assert ca.verify(cert)
    assert cert.subject == "alice"
    assert cert.issuer == ca.name


def test_enroll_generates_matching_pair(ca):
    key, cert = ca.enroll("bob")
    assert cert.public_key == key.public()
    assert ca.verify(cert)


def test_serials_unique(ca, rsa_keys):
    a = ca.issue("x", rsa_keys[0].public())
    b = ca.issue("y", rsa_keys[1].public())
    assert a.serial != b.serial


def test_tampered_subject_rejected(ca, rsa_keys):
    import dataclasses

    cert = ca.issue("honest", rsa_keys[0].public())
    forged = dataclasses.replace(cert, subject="mallory")
    assert not ca.verify(forged)


def test_foreign_issuer_rejected(ca, rsa_keys):
    other = CertificateAuthority(name="evil-ca", rng=random.Random(5), key_bits=512)
    cert = other.issue("mallory", rsa_keys[0].public())
    assert not ca.verify(cert)


def test_revocation(ca, rsa_keys):
    cert = ca.issue("victim", rsa_keys[2].public())
    assert ca.verify(cert)
    ca.revoke(cert.serial)
    assert ca.is_revoked(cert.serial)
    assert not ca.verify(cert)


def test_revoke_unknown_serial_raises(ca):
    with pytest.raises(CertificateError):
        ca.revoke(999999)


def test_validity_window(ca, rsa_keys):
    cert = ca.issue("timed", rsa_keys[3].public(), not_before=10.0, not_after=20.0)
    assert not ca.verify(cert, at_time=5.0)
    assert ca.verify(cert, at_time=15.0)
    assert not ca.verify(cert, at_time=25.0)


def test_empty_validity_rejected(ca, rsa_keys):
    with pytest.raises(ValueError):
        ca.issue("bad", rsa_keys[0].public(), not_before=5.0, not_after=5.0)


def test_byte_size_reasonable(ca, rsa_keys):
    cert = ca.issue("sized", rsa_keys[0].public())
    assert 100 < cert.byte_size() < 400


# ------------------------------------------------------------------ keystore
def test_keystore_rejects_mismatched_identity(ca):
    key, cert = ca.enroll("carol")
    with pytest.raises(CertificateError):
        KeyStore("not-carol", key, cert)


def test_keystore_rejects_mismatched_key(ca, rsa_keys):
    _key, cert = ca.enroll("dave")
    with pytest.raises(CertificateError):
        KeyStore("dave", rsa_keys[0], cert)


def test_keystore_cache_and_lookup(ca_with_nodes):
    _ca, stores = ca_with_nodes
    store = stores[0]
    assert store.get("node-3") is not None
    assert store.get_by_serial(store.get("node-3").serial).subject == "node-3"
    assert "node-5" in store
    assert len(store) == 6


def test_pick_ring_contains_self_and_k_decoys(ca_with_nodes, rng):
    _ca, stores = ca_with_nodes
    store = stores[0]
    ring = store.pick_ring(3, rng)
    subjects = [c.subject for c in ring]
    assert len(ring) == 4
    assert store.identity in subjects
    assert len(set(subjects)) == 4


def test_pick_ring_randomizes_signer_position(ca_with_nodes):
    """A fixed signer slot would deanonymize; positions must vary."""
    _ca, stores = ca_with_nodes
    store = stores[0]
    rng = random.Random(0)
    positions = {
        store.ring_index_of_self(store.pick_ring(4, rng)) for _ in range(50)
    }
    assert len(positions) > 1


def test_pick_ring_insufficient_decoys(ca_with_nodes, rng):
    _ca, stores = ca_with_nodes
    with pytest.raises(CertificateError):
        stores[0].pick_ring(99, rng)


def test_pick_ring_negative_k(ca_with_nodes, rng):
    _ca, stores = ca_with_nodes
    with pytest.raises(ValueError):
        stores[0].pick_ring(-1, rng)


def test_ring_index_of_self_missing(ca_with_nodes, rng):
    _ca, stores = ca_with_nodes
    ring = stores[1].pick_ring(2, rng)
    foreign = [c for c in ring if c.subject != stores[0].identity]
    with pytest.raises(CertificateError):
        stores[0].ring_index_of_self(foreign)
