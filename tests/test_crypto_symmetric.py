"""Tests for the symmetric primitives (stream cipher, Feistel permutation)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.symmetric import FeistelPermutation, StreamCipher


# ------------------------------------------------------------ stream cipher
def test_stream_roundtrip():
    cipher = StreamCipher(b"key")
    ct = cipher.encrypt(b"nonce", b"plaintext")
    assert cipher.decrypt(b"nonce", ct) == b"plaintext"
    assert ct != b"plaintext"


def test_stream_different_nonce_differs():
    cipher = StreamCipher(b"key")
    assert cipher.encrypt(b"n1", b"data") != cipher.encrypt(b"n2", b"data")


def test_stream_different_key_differs():
    assert StreamCipher(b"k1").encrypt(b"n", b"data") != StreamCipher(b"k2").encrypt(b"n", b"data")


def test_stream_empty_key_rejected():
    with pytest.raises(ValueError):
        StreamCipher(b"")


def test_stream_long_message():
    cipher = StreamCipher(b"key")
    message = bytes(i % 256 for i in range(10_000))
    assert cipher.decrypt(b"n", cipher.encrypt(b"n", message)) == message


def test_keystream_deterministic():
    assert StreamCipher(b"k").keystream(b"n", 64) == StreamCipher(b"k").keystream(b"n", 64)


# --------------------------------------------------------- Feistel permutation
def test_feistel_roundtrip_int():
    perm = FeistelPermutation(b"key", width=8)
    for value in (0, 1, 12345, perm.modulus - 1):
        assert perm.decrypt_int(perm.encrypt_int(value)) == value


def test_feistel_roundtrip_bytes():
    perm = FeistelPermutation(b"key", width=16)
    block = bytes(range(16))
    assert perm.decrypt(perm.encrypt(block)) == block


def test_feistel_is_permutation_on_small_domain():
    perm = FeistelPermutation(b"key", width=2)
    outputs = {perm.encrypt_int(v) for v in range(65536)}
    assert len(outputs) == 65536


def test_feistel_key_sensitivity():
    a = FeistelPermutation(b"key-a", width=8)
    b = FeistelPermutation(b"key-b", width=8)
    assert a.encrypt_int(42) != b.encrypt_int(42)


def test_feistel_odd_width_rejected():
    with pytest.raises(ValueError):
        FeistelPermutation(b"k", width=7)


def test_feistel_zero_width_rejected():
    with pytest.raises(ValueError):
        FeistelPermutation(b"k", width=0)


def test_feistel_wrong_block_length_rejected():
    perm = FeistelPermutation(b"k", width=8)
    with pytest.raises(ValueError):
        perm.encrypt(b"short")


def test_feistel_modulus():
    assert FeistelPermutation(b"k", width=4).modulus == 2**32


@given(st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=100)
def test_feistel_inverse_property(value):
    perm = FeistelPermutation(b"prop-key", width=8)
    assert perm.decrypt_int(perm.encrypt_int(value)) == value
    assert perm.encrypt_int(perm.decrypt_int(value)) == value


# ----------------------------------------------------- pinned output vectors
# These freeze the exact bytes produced before the XOR hot loop was
# replaced with single big-int operations (PR 3).  Any future "faster"
# XOR must keep producing these — the constructions are wire-visible
# (trapdoor hybrid encryption, RST combining function), so drift would
# silently break recorded traces and cross-version interop.
def test_stream_cipher_pinned_vector():
    cipher = StreamCipher(b"regression-key")
    ct = cipher.encrypt(b"nonce-0", b"anonymous geographic forwarding")
    assert ct.hex() == (
        "2414d21b3438ed901ba25f2aa764167ed137c2151fd0fe1f1cc65d8a72baee"
    )
    assert cipher.decrypt(b"nonce-0", ct) == b"anonymous geographic forwarding"


def test_keystream_pinned_vector():
    ks = StreamCipher(b"regression-key").keystream(b"nonce-0", 16)
    assert ks.hex() == "457abd754d5582e56882384fc803641f"


def test_feistel_pinned_vectors():
    perm = FeistelPermutation(b"regression-key", width=8)
    assert perm.encrypt_int(0x0123456789ABCDEF) == 0x147BEB976E69800B
    assert perm.encrypt(bytes(range(8))).hex() == "082721d8ac90b6f4"
    assert perm.decrypt_int(0x147BEB976E69800B) == 0x0123456789ABCDEF


def test_xor_bytes_length_mismatch_rejected():
    from repro.crypto.symmetric import _xor_bytes

    with pytest.raises(ValueError):
        _xor_bytes(b"ab", b"abc")
    assert _xor_bytes(b"", b"") == b""
    assert _xor_bytes(b"\x00\xff\x55", b"\xff\x00\xaa") == b"\xff\xff\xff"
