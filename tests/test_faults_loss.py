"""Channel-loss models: unit behaviour, accounting, and end-to-end wiring.

The end-to-end tests double as the regression suite for the ACK-dedupe
bug under *injected* loss: a deaf sender forces retransmissions, the
receiver re-requests the same ACK reference, and the reference must be
carried once per flush window — not once per data copy.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import AgfwConfig
from repro.faults import (
    LOSS_MODELS,
    BernoulliLoss,
    DistanceLoss,
    GilbertElliottLoss,
    LossProcess,
    make_loss_process,
    validate_loss_model,
)
from repro.metrics.faults import FaultMetrics, format_faults_report
from tests.conftest import build_static_net, line_positions


def _metrics() -> FaultMetrics:
    return FaultMetrics()


# ------------------------------------------------------------------ bernoulli
def test_bernoulli_rate_zero_never_drops():
    process = BernoulliLoss(random.Random(1), _metrics(), rate=0.0)
    assert not any(process.should_drop(100.0) for _ in range(500))


def test_bernoulli_rate_matches_long_run_average():
    metrics = _metrics()
    process = BernoulliLoss(random.Random(7), metrics, rate=0.3)
    for _ in range(4000):
        process.should_drop(100.0)
    assert metrics.loss_draws == 4000
    assert metrics.loss_fraction == pytest.approx(0.3, abs=0.03)


def test_bernoulli_rejects_bad_rate():
    with pytest.raises(ValueError):
        BernoulliLoss(random.Random(1), _metrics(), rate=1.0)
    with pytest.raises(ValueError):
        BernoulliLoss(random.Random(1), _metrics(), rate=-0.1)


# -------------------------------------------------------------------- gilbert
def test_gilbert_matches_rate_but_bursts():
    metrics = _metrics()
    process = GilbertElliottLoss(random.Random(3), metrics, rate=0.2, burst_length=8.0)
    for _ in range(20000):
        process.should_drop(100.0)
    # Long-run loss matches the Bernoulli dose ...
    assert metrics.loss_fraction == pytest.approx(0.2, abs=0.03)
    # ... but arrives in bursts near the configured dwell time.
    assert metrics.mean_burst_length == pytest.approx(8.0, rel=0.25)


def test_gilbert_rate_zero_stays_good():
    process = GilbertElliottLoss(random.Random(5), _metrics(), rate=0.0)
    assert not any(process.should_drop(50.0) for _ in range(500))


def test_gilbert_validation():
    with pytest.raises(ValueError):
        GilbertElliottLoss(random.Random(1), _metrics(), rate=0.2, burst_length=0.5)
    with pytest.raises(ValueError):
        GilbertElliottLoss(random.Random(1), _metrics(), rate=0.2, loss_bad=1.5)


# ------------------------------------------------------------------- distance
def test_distance_loss_zero_at_origin_and_rate_at_edge():
    metrics = _metrics()
    process = DistanceLoss(random.Random(9), metrics, rate=0.5, radio_range=250.0)
    assert not any(process.should_drop(0.0) for _ in range(200))
    edge_drops = sum(process.should_drop(250.0) for _ in range(4000))
    assert edge_drops / 4000 == pytest.approx(0.5, abs=0.05)


def test_distance_loss_monotone_in_distance():
    # Same stream, fixed draws: closer receptions can only drop less often.
    def drops_at(d: float) -> int:
        process = DistanceLoss(random.Random(11), _metrics(), rate=0.8, radio_range=250.0)
        return sum(process.should_drop(d) for _ in range(2000))

    assert drops_at(60.0) < drops_at(150.0) < drops_at(250.0)


# ------------------------------------------------------------------ accounting
def test_burst_accounting_counts_streaks():
    class _Scripted(LossProcess):
        def __init__(self, pattern):
            super().__init__(random.Random(0), _metrics())
            self._pattern = iter(pattern)

        def _draw(self, distance):
            return next(self._pattern)

    process = _Scripted([True, True, False, True, False, False])
    for _ in range(6):
        process.should_drop(10.0)
    m = process.metrics
    assert m.drops_injected == 3
    assert m.bursts_completed == 2
    assert m.burst_drops_total == 3
    assert m.mean_burst_length == pytest.approx(1.5)
    report = format_faults_report(m)
    assert "drops" in report


# --------------------------------------------------------------------- factory
def test_make_loss_process_none_returns_none():
    assert (
        make_loss_process("none", 0.0, {}, random.Random(1), _metrics(), 250.0) is None
    )


def test_make_loss_process_rejects_unknown_model_and_params():
    with pytest.raises(ValueError):
        validate_loss_model("rayleigh")
    with pytest.raises(ValueError):
        make_loss_process("bernoulli", 0.1, {"exponent": 2}, random.Random(1), _metrics(), 250.0)
    with pytest.raises(ValueError):
        make_loss_process("gilbert", 0.1, {"typo": 1}, random.Random(1), _metrics(), 250.0)


def test_make_loss_process_builds_each_model():
    for model, cls in (
        ("bernoulli", BernoulliLoss),
        ("gilbert", GilbertElliottLoss),
        ("distance", DistanceLoss),
    ):
        process = make_loss_process(model, 0.2, {}, random.Random(1), _metrics(), 250.0)
        assert isinstance(process, cls)
    assert LOSS_MODELS == ("none", "bernoulli", "gilbert", "distance")


# ---------------------------------------------------- end-to-end (PHY wiring)
def test_loss_process_drops_count_at_phy():
    """With a lossy channel the receiver's PHY suppresses deliveries and
    the metrics ledger sees every draw."""
    net = build_static_net(
        line_positions(2), protocol="gpsr", loss_model="bernoulli", loss_rate=0.5
    )
    net.sim.run(until=5.0)
    m = net.fault_metrics
    assert m is not None
    assert m.loss_draws > 0
    assert m.drops_injected > 0
    assert net.nodes[0].phy.frames_impaired + net.nodes[1].phy.frames_impaired > 0


def test_lossless_models_leave_no_counters():
    net = build_static_net(line_positions(2), protocol="gpsr")
    net.sim.run(until=2.0)
    assert net.fault_metrics is None  # "none" builds no machinery at all


class _DeafWindow(LossProcess):
    """Scripted impairment: the receiver hears nothing inside [t0, t1)."""

    def __init__(self, sim, metrics, t0: float, t1: float) -> None:
        super().__init__(random.Random(0), metrics)
        self.sim = sim
        self.t0 = t0
        self.t1 = t1

    def _draw(self, distance: float) -> bool:
        return self.t0 <= self.sim.now < self.t1


def test_ack_dedupe_regression_under_injected_loss():
    """Regression (end-to-end) for the queue_ack dedupe bug.

    The sender goes deaf right as it forwards, so its NL-ACKs are lost
    and it retransmits on a tight timeout.  Each retransmitted copy
    re-requests the same ACK reference at the receiver; duplicates
    landing inside one flush window must be carried once (dedupe), and
    copies arriving after a drain must earn a fresh ACK (re-queue) so
    the transfer still completes once the window lifts.
    """
    net = build_static_net(
        line_positions(2),
        protocol="agfw",
        agfw_config=AgfwConfig(ack_timeout=0.001, max_retransmissions=8),
    )
    net.sim.run(until=3.0)  # neighbor state warm
    metrics = FaultMetrics()
    net.nodes[0].phy.set_loss_process(_DeafWindow(net.sim, metrics, 3.0, 3.05))
    net.nodes[0].router.send_data("node-1", 64)
    net.sim.run(until=6.0)
    sender = net.nodes[0].router.acks
    receiver = net.nodes[1].router.acks
    assert sender.retransmissions > 0  # the deaf window was noticed
    assert receiver.acks_deduped > 0  # dup refs collapsed within a window
    assert sender.acks_matched > 0  # and the post-window ACK got through
    assert [d[0] for d in net.deliveries()] == [1]  # delivered exactly once
