"""Tests for the tracer."""

from __future__ import annotations

from repro.sim.trace import Tracer


def test_emit_and_len(tracer):
    tracer.emit(1.0, "a.b", node=1, x=1)
    tracer.emit(2.0, "a.c", node=2)
    assert len(tracer) == 2


def test_filter_by_prefix(tracer):
    tracer.emit(1.0, "phy.tx", node=0)
    tracer.emit(1.0, "phy.collision", node=0)
    tracer.emit(1.0, "mac.tx", node=0)
    assert tracer.count("phy") == 2
    assert tracer.count("phy.tx") == 1
    assert tracer.count("mac") == 1


def test_records_carry_payload(tracer):
    tracer.emit(3.5, "app.send", node=4, packet_uid=99)
    record = next(tracer.filter("app.send"))
    assert record.time == 3.5
    assert record.node == 4
    assert record.data["packet_uid"] == 99


def test_subscriber_receives_matching_records(tracer):
    seen = []
    tracer.subscribe("app.", seen.append)
    tracer.emit(1.0, "app.send", node=0)
    tracer.emit(1.0, "mac.tx", node=0)
    assert len(seen) == 1
    assert seen[0].category == "app.send"


def test_multiple_subscribers_all_fire(tracer):
    a, b = [], []
    tracer.subscribe("x", a.append)
    tracer.subscribe("x", b.append)
    tracer.emit(0.0, "x.y")
    assert len(a) == len(b) == 1


def test_keep_false_skips_retention_but_notifies():
    tracer = Tracer(keep=False)
    seen = []
    tracer.subscribe("", seen.append)
    tracer.emit(0.0, "anything")
    assert len(tracer) == 0
    assert len(seen) == 1


def test_mute_drops_category(tracer):
    tracer.mute("noisy")
    tracer.emit(0.0, "noisy")
    tracer.emit(0.0, "quiet")
    assert len(tracer) == 1
    tracer.unmute("noisy")
    tracer.emit(0.0, "noisy")
    assert len(tracer) == 2


def test_mute_is_exact_category_not_prefix(tracer):
    tracer.mute("a")
    tracer.emit(0.0, "a.b")  # not muted: exact-match only
    assert len(tracer) == 1


def test_categories_histogram(tracer):
    tracer.emit(0.0, "a")
    tracer.emit(0.0, "a")
    tracer.emit(0.0, "b")
    assert tracer.categories() == {"a": 2, "b": 1}


def test_clear(tracer):
    tracer.emit(0.0, "a")
    tracer.clear()
    assert len(tracer) == 0


def test_iteration_yields_records_in_order(tracer):
    tracer.emit(1.0, "a")
    tracer.emit(2.0, "b")
    assert [r.category for r in tracer] == ["a", "b"]
