"""Tests for the tracer."""

from __future__ import annotations

import pytest

from repro.sim.trace import Tracer


def test_emit_and_len(tracer):
    tracer.emit(1.0, "a.b", node=1, x=1)
    tracer.emit(2.0, "a.c", node=2)
    assert len(tracer) == 2


def test_filter_by_prefix(tracer):
    tracer.emit(1.0, "phy.tx", node=0)
    tracer.emit(1.0, "phy.collision", node=0)
    tracer.emit(1.0, "mac.tx", node=0)
    assert tracer.count("phy") == 2
    assert tracer.count("phy.tx") == 1
    assert tracer.count("mac") == 1


def test_records_carry_payload(tracer):
    tracer.emit(3.5, "app.send", node=4, packet_uid=99)
    record = next(tracer.filter("app.send"))
    assert record.time == 3.5
    assert record.node == 4
    assert record.data["packet_uid"] == 99


def test_subscriber_receives_matching_records(tracer):
    seen = []
    tracer.subscribe("app.", seen.append)
    tracer.emit(1.0, "app.send", node=0)
    tracer.emit(1.0, "mac.tx", node=0)
    assert len(seen) == 1
    assert seen[0].category == "app.send"


def test_multiple_subscribers_all_fire(tracer):
    a, b = [], []
    tracer.subscribe("x", a.append)
    tracer.subscribe("x", b.append)
    tracer.emit(0.0, "x.y")
    assert len(a) == len(b) == 1


def test_keep_false_skips_retention_but_notifies():
    tracer = Tracer(keep=False)
    seen = []
    tracer.subscribe("", seen.append)
    tracer.emit(0.0, "anything")
    assert len(tracer) == 0
    assert len(seen) == 1


def test_mute_drops_category(tracer):
    """Old exact-category behaviour still holds: the muted category itself
    is dropped and unmute restores it."""
    tracer.mute("noisy")
    tracer.emit(0.0, "noisy")
    tracer.emit(0.0, "quiet")
    assert len(tracer) == 1
    tracer.unmute("noisy")
    tracer.emit(0.0, "noisy")
    assert len(tracer) == 2


def test_mute_is_prefix_based_like_subscribe(tracer):
    """Regression for the mute/subscribe asymmetry: mute now uses the same
    prefix semantics as subscribe/filter, so ``mac.`` mutes ``mac.drop``."""
    tracer.mute("mac.")
    tracer.emit(0.0, "mac.drop")
    tracer.emit(0.0, "mac.tx")
    tracer.emit(0.0, "route.forward")
    assert [r.category for r in tracer] == ["route.forward"]
    tracer.unmute("mac.")
    tracer.emit(0.0, "mac.drop")
    assert len(tracer) == 2


def test_mute_suppresses_subscribers_too(tracer):
    seen = []
    tracer.subscribe("mac.", seen.append)
    tracer.mute("mac.drop")
    tracer.emit(0.0, "mac.drop")
    tracer.emit(0.0, "mac.tx")
    assert [r.category for r in seen] == ["mac.tx"]


# ------------------------------------------------------------- fast path
def test_enabled_for_reflects_keep_subscribers_and_mutes():
    keeping = Tracer(keep=True)
    assert keeping.enabled_for("anything")  # retained even with no listener
    keeping.mute("mac.")
    assert not keeping.enabled_for("mac.drop")

    dropping = Tracer(keep=False)
    assert not dropping.enabled_for("mac.tx")  # nobody listening, no log
    dropping.subscribe("mac.", lambda r: None)
    assert dropping.enabled_for("mac.tx")
    assert not dropping.enabled_for("phy.tx")


def test_drop_path_never_allocates_a_record(monkeypatch):
    """keep=False + no matching subscriber: emit must return before the
    TraceRecord is constructed (the zero-allocation fast path)."""
    import repro.sim.trace as trace_module

    tracer = Tracer(keep=False)
    tracer.subscribe("app.", lambda r: None)

    def boom(*args, **kwargs):  # pragma: no cover - must not be reached
        raise AssertionError("TraceRecord allocated on the drop path")

    monkeypatch.setattr(trace_module, "TraceRecord", boom)
    tracer.emit(0.0, "mac.tx", node=1, payload=123)  # no app.* match: dropped
    with pytest.raises(AssertionError):
        tracer.emit(0.0, "app.send", node=1)  # matched: must allocate


def test_bucketed_and_unbucketed_subscribers_fire_in_registration_order(tracer):
    calls = []
    tracer.subscribe("", lambda r: calls.append("global"))
    tracer.subscribe("app.", lambda r: calls.append("bucketed"))
    tracer.subscribe("ap", lambda r: calls.append("partial-head"))
    tracer.emit(0.0, "app.send")
    assert calls == ["global", "bucketed", "partial-head"]
    calls.clear()
    tracer.emit(0.0, "apple")  # no dot: only non-bucketed prefixes match
    assert calls == ["global", "partial-head"]


def test_subscribe_after_emit_invalidates_dispatch_cache(tracer):
    tracer.emit(0.0, "app.send")  # primes the per-category cache
    seen = []
    tracer.subscribe("app.", seen.append)
    tracer.emit(1.0, "app.send")
    assert len(seen) == 1


def test_dispatch_stats_surface_cache_shape(tracer):
    tracer.subscribe("app.send", lambda r: None)
    tracer.subscribe("", lambda r: None)
    tracer.mute("noisy.")
    tracer.emit(0.0, "app.send")
    stats = tracer.dispatch_stats()
    assert stats["subscribers"] == 2
    assert stats["bucketed"] == 1 and stats["unbucketed"] == 1
    assert stats["muted_prefixes"] == 1
    assert stats["cached_categories"] >= 1
    assert stats["retained_records"] == 1


def test_categories_histogram(tracer):
    tracer.emit(0.0, "a")
    tracer.emit(0.0, "a")
    tracer.emit(0.0, "b")
    assert tracer.categories() == {"a": 2, "b": 1}


def test_clear(tracer):
    tracer.emit(0.0, "a")
    tracer.clear()
    assert len(tracer) == 0


def test_iteration_yields_records_in_order(tracer):
    tracer.emit(1.0, "a")
    tracer.emit(2.0, "b")
    assert [r.category for r in tracer] == ["a", "b"]
