"""Tests for the AANT certificate-fetch sub-protocol (paper Section 4).

A cold-cache verifier must not silently reject honest ring-signed hellos:
it requests the missing decoy certificates from its neighbors, caches the
replies, and retries verification.  "The number of explicit requests are
expected to decline significantly after the network boots up."
"""

from __future__ import annotations

import random

import pytest

from repro.core.aant import AantAuthenticator, CertReply, CertRequest
from repro.core.agfw import AgfwRouter
from repro.core.config import AantConfig, AgfwConfig
from repro.crypto.certificates import CertificateAuthority, KeyStore
from repro.geo.vec import Position
from tests.conftest import build_static_net, line_positions


def _real_aant_net(num_nodes=3, ring_size=2, cold_indexes=()):
    """Real-crypto AANT network; nodes in ``cold_indexes`` start with only
    their own certificate cached."""
    net = build_static_net(
        line_positions(num_nodes), protocol="agfw", start=False, attach_routers=False
    )
    ca = CertificateAuthority(rng=random.Random(13))
    stores = []
    for node in net.nodes:
        key, cert = ca.enroll(node.identity)
        stores.append(KeyStore(node.identity, key, cert))
    all_certs = [s.certificate for s in stores]
    for index, (node, store) in enumerate(zip(net.nodes, stores)):
        if index not in cold_indexes:
            store.add_all(all_certs)
        node.keystore = store
    config = AgfwConfig(aant=AantConfig(ring_size=ring_size), crypto_mode="real")
    for node in net.nodes:
        auth = AantAuthenticator(
            config.aant, mode="real", keystore=node.keystore, ca=ca,
            rng=node.rng("aant"),
        )
        node.attach_router(
            AgfwRouter(node, net.oracle, config, net.tracer, authenticator=auth)
        )
    for node in net.nodes:
        node.start()
    return net, ca, stores


def test_cold_verifier_fetches_and_accepts():
    net, _ca, stores = _real_aant_net(num_nodes=3, cold_indexes=(1,))
    cold = net.nodes[1].router
    assert len(stores[1]) == 1  # only its own certificate
    net.sim.run(until=6.0)
    # It asked, neighbors answered, and its ANT filled up anyway.
    assert cold.cert_requests_sent > 0
    assert len(stores[1]) > 1
    assert len(cold.ant) >= 1
    assert sum(n.router.cert_replies_sent for n in net.nodes) > 0


def test_requests_decline_after_bootstrap():
    """The paper's expectation: explicit requests dry up once caches warm."""
    net, _ca, _stores = _real_aant_net(num_nodes=3, cold_indexes=(1,))
    cold = net.nodes[1].router
    net.sim.run(until=8.0)
    early_requests = cold.cert_requests_sent
    assert early_requests > 0
    net.sim.run(until=20.0)
    late_requests = cold.cert_requests_sent - early_requests
    # 12 more seconds of beaconing produce (almost) no new requests.
    assert late_requests <= early_requests


def test_warm_network_sends_no_requests():
    net, _ca, _stores = _real_aant_net(num_nodes=3, cold_indexes=())
    net.sim.run(until=6.0)
    assert sum(n.router.cert_requests_sent for n in net.nodes) == 0


def test_forged_certificates_in_reply_rejected():
    net, ca, stores = _real_aant_net(num_nodes=2, cold_indexes=(1,))
    evil_ca = CertificateAuthority(name="evil", rng=random.Random(66), key_bits=512)
    _evil_key, evil_cert = evil_ca.enroll("node-0")  # impersonation attempt
    cold = net.nodes[1].router
    before = len(stores[1])
    cold._on_cert_reply(CertReply(certificates=(evil_cert,)))
    assert len(stores[1]) == before  # not cached


def test_cert_request_wire_size():
    request = CertRequest(subjects=("node-1", "node-2"))
    assert request.header_bytes() > 20
    assert request.wire_view() == {"subjects": ["node-1", "node-2"]}


def test_cert_reply_size_scales_with_certificates(ca_with_nodes):
    _ca, stores = ca_with_nodes
    one = CertReply(certificates=(stores[0].certificate,))
    two = CertReply(certificates=(stores[0].certificate, stores[1].certificate))
    assert two.header_bytes() > one.header_bytes()
