"""Array spatial backend: unit contracts + whole-scenario equivalence.

The array backend (``spatial_mode="array"``) is only admissible because
it is *outcome-invisible*: candidates come back in registration order,
every escaping float is bitwise what the object path computes, and whole
scenarios — mobile, faulted, and multiprocess — trace identically under
``obj``, ``array``, and ``cross``.  ``cross`` additionally re-derives
every fan-out with the scalar path inside the run, so a passing cross
run is a per-transmission proof for that workload.
"""

from __future__ import annotations

import math
import random
import struct

import pytest

from repro.experiments.fig1 import run_fig1
from repro.experiments.scenario import Scenario, ScenarioConfig, run_scenario
from repro.faults import FaultPlan
from repro.geo import vecops
from repro.geo.spatial import SpatialIndex
from repro.geo.vec import Position
from repro.geo.region import Region
from repro.net.medium import SPATIAL_MODES, RadioMedium
from repro.net.mobility import RandomWaypointMobility, StaticMobility
from repro.net.phy import PhyRadio
from repro.sim.engine import Simulator

requires_numpy = pytest.mark.skipif(
    not vecops.HAVE_NUMPY, reason="numpy not available (repro[fast] extra)"
)


# ------------------------------------------------------------ unit level
def _static_population(seed: int, n: int = 30):
    """A medium with ``n`` static radios scattered over the paper arena."""
    rng = random.Random(seed)
    sim = Simulator()
    medium = RadioMedium(sim, spatial_mode="array")
    radios = [
        PhyRadio(
            sim,
            i,
            medium,
            StaticMobility(Position(rng.uniform(0, 1500), rng.uniform(0, 300))),
        )
        for i in range(n)
    ]
    return sim, medium, radios


@requires_numpy
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_candidates_registration_order_matches_object_index(seed):
    sim, medium, radios = _static_population(seed)
    assert medium.spatial_effective == "array"
    aindex = medium._aindex
    obj = SpatialIndex(cell_size=550.0)
    for radio in radios:
        obj.add(radio, sim.now)
    rng = random.Random(seed + 100)
    for _ in range(20):
        center = Position(rng.uniform(-100, 1600), rng.uniform(-100, 400))
        got = aindex.candidates_within(center, 550.0, sim.now)
        want = obj.candidates_within(center, 550.0, sim.now)
        assert got == want  # same radios, same registration order


@requires_numpy
@pytest.mark.parametrize("seed", [4, 5])
def test_classify_fanout_bitwise_matches_scalar_recompute(seed):
    sim, medium, radios = _static_population(seed)
    aindex = medium._aindex
    r2 = medium._radio_range2
    i2 = medium._interference_range2
    for sender in radios[:8]:
        fan = aindex.classify_fanout(sender.node_id, sim.now, medium.interference_range, r2, i2)
        spos = sender.mobility.position_at(sim.now)
        assert struct.pack("<dd", fan.sx, fan.sy) == struct.pack("<dd", spos.x, spos.y)
        expected = []
        for radio in radios:  # brute scalar reference, registration order
            if radio is sender:
                continue
            rpos = radio.mobility.position_at(sim.now)
            if rpos.distance2_to(spos) <= i2:
                expected.append(radio)
        assert [aindex.radio_at(row) for row in fan.rows] == expected
        for k, row in enumerate(fan.rows):
            rpos = aindex.radio_at(row).mobility.position_at(sim.now)
            d2 = rpos.distance2_to(spos)
            assert fan.deliverable[k] == (d2 <= r2)
            dist = math.hypot(fan.dx[k], fan.dy[k])
            assert struct.pack("<d", dist) == struct.pack("<d", rpos.distance_to(spos))


@requires_numpy
def test_teleport_repositions_and_rebins():
    sim, medium, radios = _static_population(seed=7, n=4)
    aindex = medium._aindex
    before = aindex.candidates_within(Position(5000.0, 5000.0), 550.0, sim.now)
    assert radios[2] not in before
    radios[2].mobility.move_to(Position(5000.0, 5000.0))
    after = aindex.candidates_within(Position(5000.0, 5000.0), 550.0, sim.now)
    assert after == [radios[2]]
    x, y = aindex.positions_at(sim.now)
    assert (float(x[2]), float(y[2])) == (5000.0, 5000.0)


@requires_numpy
def test_gather_cache_hits_and_stats_keys():
    sim, medium, radios = _static_population(seed=9, n=12)
    aindex = medium._aindex
    center = Position(750.0, 150.0)
    first = aindex.candidates_within(center, 550.0, sim.now)
    assert aindex.candidates_within(center, 550.0, sim.now) is first  # cache-owned
    stats = medium.index_stats()
    assert stats is not None
    assert set(stats) == {"radios", "cells", "rebins", "refreshes", "cache_hits"}
    assert stats["radios"] == 12 and stats["cache_hits"] >= 1


@requires_numpy
def test_mobile_rows_track_legs_without_teleports():
    sim = Simulator()
    medium = RadioMedium(sim, spatial_mode="array")
    rng = random.Random(11)
    region = Region(0.0, 0.0, 1500.0, 300.0)
    radios = [
        PhyRadio(
            sim,
            i,
            medium,
            RandomWaypointMobility(sim, region, random.Random(rng.random()),
                                   pause_time=0.0, min_speed=5.0),
        )
        for i in range(10)
    ]
    sim.run(until=30.0)  # RWP legs re-roll forever; bound the run
    aindex = medium._aindex
    x, y = aindex.positions_at(sim.now)
    for i, radio in enumerate(radios):
        ref = radio.mobility.position_at(sim.now)
        assert struct.pack("<dd", float(x[i]), float(y[i])) == struct.pack(
            "<dd", ref.x, ref.y
        )


def test_invalid_spatial_mode_rejected():
    with pytest.raises(ValueError):
        RadioMedium(Simulator(), spatial_mode="quadtree")
    with pytest.raises(ValueError):
        ScenarioConfig(spatial_mode="quadtree")


def test_brute_index_mode_forces_object_fallback():
    medium = RadioMedium(Simulator(), index_mode="brute", spatial_mode="array")
    assert medium.spatial_effective == "obj"


# ------------------------------------------------------- scenario level
def _config(seed: int, spatial: str, **overrides) -> ScenarioConfig:
    base = dict(
        protocol="agfw",
        num_nodes=16,
        sim_time=6.0,
        traffic_start=(0.5, 1.5),
        num_flows=5,
        num_senders=4,
        seed=seed,
        static=False,
        pause_time=0.0,
        min_speed=5.0,
        keep_trace=True,
        spatial_mode=spatial,
        pool_mode="off",
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def _fingerprint(config: ScenarioConfig) -> list:
    """Trace reduced to the in-process-stable fields (uids are module
    counters, deliberately exempt — see DET-006)."""
    scenario = Scenario(config)
    result = scenario.run()
    records = [(repr(r.time), r.category, r.node) for r in scenario.tracer.records]
    assert records, "keep_trace scenario must retain records"
    return [(result.sent, result.delivered, result.collisions)] + records


@requires_numpy
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_spatial_modes_trace_identically(seed):
    prints = [_fingerprint(_config(seed, spatial)) for spatial in SPATIAL_MODES]
    assert prints[0] == prints[1] == prints[2]
    assert prints[0][0][0] > 0  # the workload actually sent traffic


@requires_numpy
@pytest.mark.parametrize("seed", [6, 7, 8])
def test_spatial_modes_trace_identically_under_faults(seed):
    """Loss + churn exercise down-radio gaps, teleporting recoveries and
    memo invalidation; the array path must still trace identically."""
    plan = FaultPlan.churn(
        range(16), sim_time=6.0, seed=seed, rate=1.0, mean_downtime=1.0
    )
    prints = [
        _fingerprint(
            _config(
                seed,
                spatial,
                loss_model="bernoulli",
                loss_rate=0.15,
                fault_plan=plan,
            )
        )
        for spatial in SPATIAL_MODES
    ]
    assert prints[0] == prints[1] == prints[2]


@requires_numpy
def test_jobs_pool_identical_across_spatial_modes():
    """--jobs workers pickle configs into subprocesses; the array backend
    must survive the trip and produce the exact same sweep points."""
    points = {
        spatial: run_fig1(
            node_counts=(10, 14),
            schemes=("agfw",),
            sim_time=4.0,
            seed=3,
            jobs=2,
            base=ScenarioConfig(spatial_mode=spatial, pool_mode="off"),
        )
        for spatial in ("obj", "array")
    }
    assert points["obj"] == points["array"]


# --------------------------------------------------- committed benchmark
def test_committed_hotpath_baseline_meets_speedup_floors():
    """The committed benchmark snapshot must show the tentpole speedups:
    >= 5x on the micro kernels, >= 1.3x end-to-end at 150 nodes."""
    import json
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "BENCH_hotpath.json"
    document = json.loads(path.read_text())
    assert document["schema_version"] == 1
    assert document["suite"] == "hotpath"
    derived = document["derived"]
    assert derived["neighbor_gather_speedup"] >= 5.0
    assert derived["batch_mobility_speedup"] >= 5.0
    assert derived["scenario_hotpath_speedup"] >= 1.3
