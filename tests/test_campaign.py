"""Campaign layer round-trips: spec, digest, store, executor, report.

The acceptance properties pinned here:

* digests are stable across interpreter restarts (hash randomization
  included) and across ``--jobs`` pool workers;
* rerunning a completed campaign touches nothing (pure cache hits);
* a SIGINT mid-matrix leaves completed points durable, a rerun finishes
  only the missing cells, and the final report is byte-identical to an
  uninterrupted sequential run's;
* the committed ``BENCH_campaign.json`` records a >= 10x warm-over-cold
  cache speedup (the "rerun is free" acceptance floor).
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import (
    CampaignSpecError,
    IncompleteCampaignError,
    ResultStore,
    campaign_report,
    config_digest,
    load_spec,
    run_campaign,
    spec_from_mapping,
)
from repro.campaign.digest import RESULT_SALT, canonical_payload
from repro.experiments.parallel import parallel_map
from repro.experiments.runner import main as runner_main
from repro.experiments.scenario import ScenarioConfig

REPO = pathlib.Path(__file__).parent.parent

SMOKE = {
    "name": "smoke",
    "seed": 3,
    "seeds": 2,
    "metrics": ["delivery_fraction", "mean_latency_ms"],
    "base": {
        "sim_time": 2.0,
        "num_flows": 3,
        "num_senders": 3,
        "traffic_start": [0.5, 1.0],
    },
    "axes": {"protocol": ["gpsr", "agfw"], "num_nodes": [12, 16]},
}

SMOKE_TOML = """\
name = "smoke"
seed = 3
seeds = 2
metrics = ["delivery_fraction", "mean_latency_ms"]

[base]
sim_time = 2.0
num_flows = 3
num_senders = 3
traffic_start = [0.5, 1.0]

[axes]
protocol = ["gpsr", "agfw"]
num_nodes = [12, 16]
"""


def _smoke_spec():
    return spec_from_mapping(SMOKE)


# ------------------------------------------------------------------- spec
def test_toml_and_json_specs_are_equivalent(tmp_path):
    toml_path = tmp_path / "c.toml"
    toml_path.write_text(SMOKE_TOML, encoding="utf-8")
    json_path = tmp_path / "c.json"
    json_path.write_text(json.dumps(SMOKE), encoding="utf-8")
    assert load_spec(toml_path) == load_spec(json_path) == _smoke_spec()


def test_points_canonical_order_and_distinct_seeds():
    points = _smoke_spec().points()
    assert len(points) == 8  # 2 protocols x 2 densities x 2 seeds
    # First axis outermost, replicate innermost.
    assert [(dict(p.axes)["protocol"], dict(p.axes)["num_nodes"], p.seed_index)
            for p in points[:4]] == [
        ("gpsr", 12, 0), ("gpsr", 12, 1), ("gpsr", 16, 0), ("gpsr", 16, 1),
    ]
    seeds = [p.config.seed for p in points]
    assert len(set(seeds)) == len(seeds)  # every point statistically independent
    # Points are pure functions of the spec: a rebuild is identical.
    assert points == _smoke_spec().points()


def test_spec_validation_rejects_bad_input():
    with pytest.raises(CampaignSpecError, match="not a ScenarioConfig field"):
        spec_from_mapping({**SMOKE, "axes": {"wavelength": [1, 2]}})
    with pytest.raises(CampaignSpecError, match="campaign-managed"):
        spec_from_mapping({**SMOKE, "base": {"seed": 5}})
    with pytest.raises(CampaignSpecError, match="unknown metric"):
        spec_from_mapping({**SMOKE, "metrics": ["vibes"]})
    with pytest.raises(CampaignSpecError, match="no axes"):
        spec_from_mapping({k: v for k, v in SMOKE.items() if k != "axes"})
    with pytest.raises(CampaignSpecError, match="valid ScenarioConfig"):
        spec_from_mapping({**SMOKE, "axes": {"protocol": ["warp-routing"]}}).points()
    with pytest.raises(CampaignSpecError, match="not both"):
        spec_from_mapping({**SMOKE, "sweep": [{"axes": {"num_nodes": [5]}}]})


def test_churn_axis_expands_to_fault_plan():
    spec = spec_from_mapping(
        {
            "name": "churny",
            "base": {"sim_time": 2.0, "num_nodes": 12},
            "axes": {"churn_rate": [0.0, 2.0]},
        }
    )
    calm, churned = spec.points()
    assert calm.config.fault_plan is None  # zero dose = untouched config
    assert churned.config.fault_plan is not None
    assert churned.config.fault_plan.events
    # The plan participates in content addressing.
    assert config_digest(calm.config) != config_digest(churned.config)


# ----------------------------------------------------------------- digest
def test_digest_is_pure_and_salt_sensitive():
    cfg = ScenarioConfig(num_nodes=12, sim_time=2.0, seed=9)
    assert config_digest(cfg) == config_digest(ScenarioConfig(num_nodes=12, sim_time=2.0, seed=9))
    assert config_digest(cfg) != config_digest(ScenarioConfig(num_nodes=12, sim_time=2.0, seed=10))
    assert config_digest(cfg) != config_digest(cfg, salt=RESULT_SALT + "-v2")
    assert b'"salt"' in canonical_payload(cfg)


def _digests_of_smoke(_ignored: int) -> list:
    """Worker: digests of the whole smoke matrix — top-level so it pickles."""
    return [config_digest(p.config) for p in spec_from_mapping(SMOKE).points()]


def test_digest_stable_across_process_restarts_and_jobs(tmp_path):
    inline = _digests_of_smoke(0)
    # Fresh interpreters with different hash randomization: a true
    # process restart, not a forked copy of this one.
    script = (
        "import json, sys\n"
        "from repro.campaign import spec_from_mapping, config_digest\n"
        "spec = spec_from_mapping(json.loads(sys.argv[1]))\n"
        "print('\\n'.join(config_digest(p.config) for p in spec.points()))\n"
    )
    outs = []
    for hash_seed in ("1", "42"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script, json.dumps(SMOKE)],
            capture_output=True, text=True, env=env, check=True,
        )
        outs.append(proc.stdout.split())
    assert outs[0] == outs[1] == inline
    # And across --jobs pool workers (forked children).
    pooled = parallel_map(_digests_of_smoke, [0, 1], jobs=2)
    assert pooled == [inline, inline]


# ------------------------------------------------------------------ store
def test_store_roundtrip_sorted_enumeration_and_corruption(tmp_path):
    store = ResultStore(tmp_path / "s")
    assert store.digests() == [] and len(store) == 0
    record = {"schema": 1, "metrics": {"delivery_fraction": 0.5}}
    a = "aa" + "0" * 62
    b = "0b" + "1" * 62
    store.put(a, record)
    store.put(b, record)
    assert store.get(a) == record
    assert store.get("ff" + "0" * 62) is None
    assert store.digests() == sorted([a, b])
    # No temp droppings survive a put.
    assert not [p for p in (tmp_path / "s").rglob(".*tmp*")]
    store.path_for(a).write_text("{truncated", encoding="utf-8")
    with pytest.raises(ValueError, match="corrupt record"):
        store.get(a)
    with pytest.raises(ValueError, match="not a content digest"):
        store.path_for("../../etc/passwd")


# -------------------------------------------------------------- executor
def test_rerun_is_pure_cache_hit(tmp_path):
    spec = _smoke_spec()
    store = ResultStore(tmp_path / "store")
    first = run_campaign(spec, store)
    assert (first.total, first.cached, first.executed) == (8, 0, 8)
    stamps = {d: store.path_for(d).stat().st_mtime_ns for d in store.digests()}
    second = run_campaign(spec, store)
    assert (second.total, second.cached, second.executed) == (8, 8, 0)
    assert {d: store.path_for(d).stat().st_mtime_ns for d in store.digests()} == stamps


def test_store_and_report_identical_across_jobs(tmp_path):
    spec = _smoke_spec()
    serial = ResultStore(tmp_path / "serial")
    pooled = ResultStore(tmp_path / "pooled")
    run_campaign(spec, serial, jobs=1)
    run_campaign(spec, pooled, jobs=3)
    assert serial.digests() == pooled.digests()
    for digest in serial.digests():
        assert serial.path_for(digest).read_bytes() == pooled.path_for(digest).read_bytes()
    assert campaign_report(spec, serial) == campaign_report(spec, pooled)


def test_report_requires_complete_matrix(tmp_path):
    spec = _smoke_spec()
    store = ResultStore(tmp_path / "store")
    with pytest.raises(IncompleteCampaignError, match="8 of 8 points missing"):
        campaign_report(spec, store)


def test_sigint_then_resume_matches_uninterrupted_sequential_run(tmp_path):
    """Interrupt a parallel campaign mid-matrix; completed points must be
    durable, the resume must execute only the missing cells, and the
    final report must be byte-identical to a cold jobs=1 run."""
    # 8 points: ProcessPoolExecutor prefetches ~jobs+1 items into its
    # call queue (uncancellable); the matrix must be larger than that
    # so the interrupt reliably leaves pending cells behind.
    slow = {
        "name": "sigint",
        "seed": 5,
        "seeds": 2,
        "base": {"sim_time": 6.0, "num_flows": 4, "num_senders": 4,
                 "traffic_start": [0.5, 1.0]},
        "axes": {"protocol": ["gpsr", "agfw"], "num_nodes": [18, 24]},
    }
    spec_path = tmp_path / "sigint.json"
    spec_path.write_text(json.dumps(slow), encoding="utf-8")
    store_root = tmp_path / "interrupted"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments.runner", "campaign", "run",
            str(spec_path), "--store", str(store_root), "--jobs", "2",
        ],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    store = ResultStore(store_root)
    deadline = time.monotonic() + 120.0
    while len(store.digests()) < 1 and time.monotonic() < deadline:
        if proc.poll() is not None:
            break
        time.sleep(0.05)
    if proc.poll() is None:
        proc.send_signal(signal.SIGINT)
    out, _ = proc.communicate(timeout=120)
    spec = load_spec(spec_path)
    total = len(spec.points())
    done = len(store.digests())
    if proc.returncode == 0:
        # Matrix finished before the signal landed (very slow machine
        # fallback) — the resume path below still must be a pure cache hit.
        assert done == total
    else:
        assert proc.returncode == 130, out
        assert "durable" in out
        assert 0 < done < total, out  # partial progress survived the interrupt
    resumed = run_campaign(spec, store)
    assert resumed.cached == done and resumed.executed == total - done
    cold_store = ResultStore(tmp_path / "cold")
    cold = run_campaign(spec, cold_store, jobs=1)
    assert cold.executed == total
    assert campaign_report(spec, store) == campaign_report(spec, cold_store)


# ------------------------------------------------------------------- cli
def test_runner_campaign_subcommand_run_status_report(tmp_path, capsys):
    spec_path = tmp_path / "smoke.json"
    spec_path.write_text(json.dumps(SMOKE), encoding="utf-8")
    store = tmp_path / "store"
    argv = ["campaign", "run", str(spec_path), "--store", str(store)]
    assert runner_main(argv) == 0
    first = capsys.readouterr().out
    assert "0 cache hits, 8 executed" in first
    assert runner_main(argv) == 0
    rerun = capsys.readouterr().out
    assert "8 cache hits, 0 executed" in rerun
    assert runner_main(["campaign", "status", str(spec_path), "--store", str(store)]) == 0
    assert "8/8 points (complete)" in capsys.readouterr().out
    out_file = tmp_path / "report.txt"
    assert runner_main(
        ["campaign", "report", str(spec_path), "--store", str(store),
         "--output", str(out_file)]
    ) == 0
    capsys.readouterr()
    text = out_file.read_text(encoding="utf-8")
    assert "# campaign 'smoke'" in text
    assert "delivery_fraction (num_nodes x protocol" in text


def test_report_crossover_detection(tmp_path):
    """A metric whose column ordering flips along the row axis is called
    out mechanically (the Fig. 1 crossover claim, as a report feature)."""
    spec = spec_from_mapping(
        {
            "name": "cross",
            "seed": 2,
            "metrics": ["delivery_fraction", "collisions"],
            "base": {"sim_time": 2.0, "num_flows": 3, "num_senders": 3,
                     "traffic_start": [0.5, 1.0]},
            "axes": {"protocol": ["gpsr", "agfw"], "num_nodes": [12, 16, 20]},
        }
    )
    store = ResultStore(tmp_path / "store")
    run_campaign(spec, store)
    report = campaign_report(spec, store)
    flips = any(
        line.startswith("crossover[") for line in report.splitlines()
    )
    # Whether this workload crosses is seed-dependent; assert agreement
    # between the report and a hand check rather than a fixed outcome.
    by_cell = {}
    for point in spec.points():
        coords = dict(point.axes)
        metrics = store.get(config_digest(point.config))["metrics"]
        by_cell[(coords["num_nodes"], coords["protocol"])] = metrics
    hand = False
    for metric in spec.metrics:
        signs = [
            (by_cell[(n, "gpsr")][metric] > by_cell[(n, "agfw")][metric])
            - (by_cell[(n, "gpsr")][metric] < by_cell[(n, "agfw")][metric])
            for n in (12, 16, 20)
        ]
        signs = [s for s in signs if s]
        hand = hand or any(a != b for a, b in zip(signs, signs[1:]))
    assert flips == hand


# ------------------------------------------------- committed artifacts
def test_committed_campaign_files_parse_and_validate():
    campaign_dir = REPO / "examples" / "campaigns"
    files = sorted(campaign_dir.glob("*.toml"))
    assert files, "no committed campaign files"
    for path in files:
        spec = load_spec(path)
        assert spec.points(), path.name


def test_committed_campaign_bench_meets_cache_speedup_floor():
    """The acceptance criterion lives in the committed artifact: a fully
    cached rerun must be >= 10x faster than the cold run."""
    path = REPO / "benchmarks" / "BENCH_campaign.json"
    document = json.loads(path.read_text(encoding="utf-8"))
    assert document["schema_version"] == 1
    assert document["suite"] == "campaign"
    assert document["derived"]["campaign_warm_cache_speedup"] >= 10.0
