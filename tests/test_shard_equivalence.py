"""Sharded execution: byte-identical traces and merged-result equality.

``shard_mode="cross"`` is the proof mode: it runs the column shards
inline *and* the unmodified single engine on the same config, comparing
the merged shard trace record-by-record against the single-engine trace
(the repo-wide ``(time, category, node)`` trace-equivalence contract) —
any divergence raises :class:`ShardCoherenceError` inside ``run()``, so
a passing cross run IS the byte-identical claim for that workload.

``shard_mode="on"`` (forked worker processes) shares every line of the
shard runtime with cross except the pipe transport, so the fork tests
assert merged-result equality field by field against the single engine
and exercise the key codec (deep causal keys cannot cross a pipe raw).
"""

from __future__ import annotations

import json
import pathlib
import pickle

import pytest

from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.faults import FaultPlan
from repro.sim.shard import SHARD_MODES, ShardCoherenceError, validate_shard_mode
from repro.sim.shard.driver import _compare_traces, effective_jobs
from repro.sim.shard.keycodec import KeyCodec
from repro.sim.shard.worker import SlimRecord


# --------------------------------------------------------------- helpers
def _cfg(seed: int, *, num_nodes: int = 20, sim_time: float = 4.0, **kw):
    defaults = dict(
        protocol="gpsr",
        num_nodes=num_nodes,
        width=1200.0,
        height=300.0,
        sim_time=sim_time,
        seed=seed,
        num_flows=8,
        num_senders=8,
        rate_pps=2.0,
        traffic_start=(0.5, 1.5),
        max_speed=20.0,
    )
    defaults.update(kw)
    return ScenarioConfig(**defaults)


def _cfg_150(seed: int, **kw):
    """The acceptance scenario: paper arena at 150 nodes."""
    return _cfg(
        seed,
        num_nodes=150,
        width=1500.0,
        sim_time=2.0,
        num_flows=10,
        num_senders=10,
        **kw,
    )


def _faulted(cfg: ScenarioConfig) -> ScenarioConfig:
    from dataclasses import replace

    return replace(
        cfg,
        loss_model="bernoulli",
        loss_rate=0.15,
        fault_plan=FaultPlan.churn(
            range(cfg.num_nodes),
            cfg.sim_time,
            seed=7,
            rate=0.8,
            mean_downtime=1.0,
        ),
    )


def _fingerprint(result):
    return dict(
        sent=result.sent,
        delivered=result.delivered,
        delivery_fraction=result.delivery_fraction,
        mean_latency=result.mean_latency,
        collisions=result.collisions,
        frames_on_air=result.frames_on_air,
        router_totals=vars(result.router_totals),
        bytes_by_kind=result.bytes_by_kind,
        frames_by_kind=result.frames_by_kind,
        fault_counters=result.fault_counters,
    )


# ------------------------------------------------------- mode validation
def test_shard_mode_matrix():
    assert SHARD_MODES == ("off", "on", "cross")
    for mode in SHARD_MODES:
        validate_shard_mode(mode)
    with pytest.raises(ValueError):
        validate_shard_mode("maybe")


def test_compare_traces_raises_on_divergence():
    a = [SlimRecord(key=(0, 0), time=1.0, category="phy.tx", node=3)]
    b = [SlimRecord(key=(0, 0), time=1.0, category="phy.tx", node=4)]
    with pytest.raises(ShardCoherenceError):
        _compare_traces(a, b)
    with pytest.raises(ShardCoherenceError):
        _compare_traces(a, a + a)  # length mismatch
    _compare_traces(a, a)  # identical: no raise


# ---------------------------------------------- cross mode (byte proofs)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_cross_150_nodes_byte_identical(seed):
    """Acceptance: 150-node scenario, sharded trace == single-engine
    trace byte for byte (cross raises on the first divergent record)."""
    result = Scenario(_cfg_150(seed, shard_mode="cross", shards=3)).run()
    assert result.sent > 0
    stats = result.__dict__["shard_stats"]
    assert stats["shards"] == 3
    assert stats["transport"] == "inline"


def test_cross_150_nodes_faulted_byte_identical():
    """Acceptance: the loss+churn faulted 150-node run is also
    byte-identical — fault injection replicates across shards exactly."""
    cfg = _faulted(_cfg_150(4, shard_mode="cross", shards=3))
    result = Scenario(cfg).run()
    assert result.fault_counters  # impairment actually ran
    assert result.fault_counters["drops_injected"] > 0
    assert result.fault_counters["crashes"] > 0


@pytest.mark.parametrize("shards", [2, 4])
def test_cross_shard_counts(shards):
    result = Scenario(_cfg(1, shard_mode="cross", shards=shards)).run()
    assert result.__dict__["shard_stats"]["shards"] == shards


def test_cross_single_shard_degenerates_cleanly():
    """shards=1 is the whole protocol with no foreign promises."""
    result = Scenario(_cfg(2, shard_mode="cross", shards=1)).run()
    assert result.sent > 0


# ------------------------------------------------- fork transport ("on")
@pytest.mark.parametrize("seed", [1, 2])
def test_fork_result_matches_single_engine(seed):
    """shard_mode="on" forks one process per shard; the merged result is
    field-for-field equal to the single engine's."""
    ref = _fingerprint(Scenario(_cfg(seed)).run())
    got_res = Scenario(_cfg(seed, shard_mode="on", shards=3)).run()
    assert _fingerprint(got_res) == ref
    assert got_res.__dict__["shard_stats"]["transport"] == "fork"


def test_fork_faulted_result_matches_single_engine():
    cfg = _faulted(_cfg(3))
    ref = _fingerprint(Scenario(cfg).run())
    from dataclasses import replace

    got = _fingerprint(
        Scenario(replace(cfg, shard_mode="on", shards=3)).run()
    )
    assert got == ref
    assert got["fault_counters"] == ref["fault_counters"]


# ---------------------------------------------------------- jobs capping
def test_effective_jobs_precedence():
    # shards win: the --jobs pool is clamped to cpu // shards, floor 1.
    assert effective_jobs(8, 4, cpu_count=8) == 2
    assert effective_jobs(8, 4, cpu_count=32) == 8
    assert effective_jobs(8, 4, cpu_count=2) == 1  # never zero
    assert effective_jobs(1, 1, cpu_count=1) == 1
    assert effective_jobs(4, 1, cpu_count=2) == 2


# ------------------------------------------------------------- key codec
def _deep_key(depth: int):
    """A causal chain like a MAC slot ladder: each key's ckey embeds the
    previous full key."""
    key = (0.0, 10, (0, 7))
    for i in range(depth):
        key = (float(i), 20, (1, key, (i % 5,), i))
    return key


def _iter_eq(a, b) -> bool:
    """Structural equality without recursion (deep keys overflow ==)."""
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x is y:
            continue
        if type(x) is not type(y):
            return False
        if isinstance(x, tuple):
            if len(x) != len(y):
                return False
            stack.extend(zip(x, y))
        elif x != y:
            return False
    return True


def test_keycodec_roundtrip_deep_chain_is_picklable():
    depth = 5000  # far beyond the recursion limit
    key = _deep_key(depth)
    with pytest.raises(RecursionError):
        pickle.dumps(key)  # the reason the codec exists
    sender, receiver = KeyCodec(), KeyCodec()
    idx = sender.encode(key)
    table = pickle.loads(pickle.dumps(sender.flush()))  # crosses the pipe
    receiver.extend(table)
    assert _iter_eq(receiver.decode(idx), key)


def test_keycodec_interns_shared_ancestry_to_identity():
    base = _deep_key(200)
    k1 = (9.0, 20, (1, base, (1,), 0))
    k2 = (9.0, 20, (1, base, (2,), 1))
    sender, receiver = KeyCodec(), KeyCodec()
    i1, i2 = sender.encode(k1), sender.encode(k2)
    receiver.extend(sender.flush())
    d1, d2 = receiver.decode(i1), receiver.decode(i2)
    assert d1[2][1] is d2[2][1]  # shared parent decodes to ONE object
    # Re-sending shared ancestry ships no new descriptors.
    k3 = (9.5, 20, (1, base, (3,), 2))
    i3 = sender.encode(k3)
    assert len(sender.flush()) == 2  # just the new ckey + new full key
    del i3


def test_keycodec_returning_key_resolves_to_local_original():
    """A key that embeds history this endpoint encoded earlier decodes
    to the original local objects — comparisons stay identity-shallow.

    This is the shard case that overflows without the codec: a foreign
    sentinel horizon built on a ghost this shard emitted is structurally
    equal to thousands of links of local history, and a non-identical
    copy would recurse past the interpreter limit on ``>=``.
    """
    local = _deep_key(300)
    a, peer = KeyCodec(), KeyCodec()
    idx0 = a.encode(local)
    peer.extend(pickle.loads(pickle.dumps(a.flush())))
    mirrored = peer.decode(idx0)
    assert mirrored is not local
    assert _iter_eq(mirrored, local)
    # The peer replies with a key *derived from* the mirrored history.
    wrapped = (99.0, 20, (1, mirrored, (4,), 1))
    idx = peer.encode(wrapped)
    a.extend(pickle.loads(pickle.dumps(peer.flush())))
    back = a.decode(idx)
    assert back[2][1] is local  # identity with the local original
    assert back < (99.0, 21, ())  # comparison never walks the chain


# ------------------------------------------------------- committed baseline
def test_cross_clustered_community_byte_identical():
    """The benchmark scenario's shape — clustered placement with
    flow-locality traffic — proves byte-identical like every other
    workload (at a size cross mode can afford)."""
    config = ScenarioConfig(
        protocol="agfw",
        num_nodes=60,
        width=8000.0,
        height=300.0,
        sim_time=1.0,
        seed=11,
        num_flows=30,
        num_senders=30,
        rate_pps=8.0,
        traffic_start=(0.1, 0.4),
        placement="clusters",
        num_clusters=4,
        cluster_radius=400.0,
        flow_locality=900.0,
        shard_mode="cross",
        shards=4,
    )
    result = Scenario(config).run()
    assert result.delivered > 0
    assert result.shard_stats["shards"] == 4


def test_committed_shard_baseline_meets_speedup_floor():
    """The acceptance criteria live in the committed artifact: the
    recorded 4-shard speedup on the 600-node community scenario —
    engine CPU seconds over the sharded run's critical path — must be
    >= 2x, the scaling-curve neighbours must at least break even, the
    PR 9 10000-node/8-shard point must clear 4x, and the piggybacked
    promise protocol must hold steady-state IPC at <= 2 messages per
    shard per round (8 at 4 shards; the legacy split rounds cost 16)."""
    path = pathlib.Path(__file__).parent.parent / "benchmarks" / "BENCH_shard.json"
    document = json.loads(path.read_text(encoding="utf-8"))
    assert document["schema_version"] == 1
    assert document["suite"] == "shard"
    assert document["derived"]["shard4_speedup_600_nodes"] >= 2.0
    assert document["derived"]["shard4_speedup_150_nodes"] >= 1.0
    assert document["derived"]["shard4_speedup_2000_nodes"] >= 1.0
    assert document["derived"]["shard8_speedup_10000_nodes"] >= 4.0
    assert document["derived"]["shard4_ipc_messages_per_round_2000_nodes"] <= 8.0
