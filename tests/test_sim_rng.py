"""Tests for deterministic RNG streams."""

from __future__ import annotations

from repro.sim.rng import RngRegistry, derive_seed


def test_same_name_returns_same_stream():
    registry = RngRegistry(1)
    assert registry.stream("a") is registry.stream("a")


def test_streams_are_deterministic_across_registries():
    a = RngRegistry(7).stream("mobility")
    b = RngRegistry(7).stream("mobility")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_independent_streams():
    registry = RngRegistry(7)
    a = registry.stream("a")
    b = registry.stream("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x")
    b = RngRegistry(2).stream("x")
    assert a.random() != b.random()


def test_draw_order_does_not_perturb_other_streams():
    """Stream 'b' must yield the same numbers no matter how much 'a' drew."""
    r1 = RngRegistry(3)
    r1.stream("a").random()
    first = [r1.stream("b").random() for _ in range(3)]

    r2 = RngRegistry(3)
    for _ in range(100):
        r2.stream("a").random()
    second = [r2.stream("b").random() for _ in range(3)]
    assert first == second


def test_fork_produces_stable_child_seed():
    assert RngRegistry(5).fork("n").seed == RngRegistry(5).fork("n").seed
    assert RngRegistry(5).fork("n").seed != RngRegistry(5).fork("m").seed


def test_fork_independent_of_parent_streams():
    parent = RngRegistry(5)
    child = parent.fork("node:0")
    value = child.stream("mac").random()
    parent.stream("mac").random()  # same name on parent must not collide
    assert RngRegistry(5).fork("node:0").stream("mac").random() == value


def test_derive_seed_is_64_bit():
    seed = derive_seed(123, "anything")
    assert 0 <= seed < 2**64


def test_contains_reflects_created_streams():
    registry = RngRegistry(0)
    assert "x" not in registry
    registry.stream("x")
    assert "x" in registry
