"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationError, Simulator, call_later


def test_initial_time_is_zero():
    assert Simulator().now == 0.0


def test_custom_start_time():
    assert Simulator(start_time=5.0).now == 5.0


def test_single_event_fires_at_scheduled_time(sim):
    fired = []
    sim.schedule(1.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.5]


def test_events_fire_in_time_order(sim):
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order(sim):
    order = []
    for tag in "abcde":
        sim.schedule(1.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == list("abcde")


def test_priority_breaks_time_ties(sim):
    order = []
    sim.schedule(1.0, lambda: order.append("late"), priority=5)
    sim.schedule(1.0, lambda: order.append("early"), priority=-5)
    sim.run()
    assert order == ["early", "late"]


def test_zero_delay_fires_after_current_instant_events(sim):
    order = []

    def first():
        order.append("first")
        sim.schedule(0.0, lambda: order.append("nested"))

    sim.schedule(1.0, first)
    sim.schedule(1.0, lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second", "nested"]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected(sim):
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_cancelled_event_does_not_fire(sim):
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    sim.run()
    assert fired == []


def test_cancel_accepts_none(sim):
    sim.cancel(None)  # must not raise


def test_cancel_is_idempotent(sim):
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_run_until_stops_clock_at_horizon(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(2))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0


def test_run_until_is_inclusive(sim):
    fired = []
    sim.schedule(5.0, lambda: fired.append(1))
    sim.run(until=5.0)
    assert fired == [1]


def test_resume_after_until(sim):
    fired = []
    sim.schedule(10.0, lambda: fired.append(1))
    sim.run(until=5.0)
    sim.run(until=20.0)
    assert fired == [1]


def test_empty_run_advances_to_until(sim):
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_max_events_bound(sim):
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_stop_halts_loop(sim):
    fired = []

    def stopper():
        fired.append("stop")
        sim.stop()

    sim.schedule(1.0, stopper)
    sim.schedule(2.0, lambda: fired.append("after"))
    sim.run()
    assert fired == ["stop"]


def test_events_scheduled_during_run_execute(sim):
    fired = []

    def outer():
        sim.schedule(1.0, lambda: fired.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["inner"]
    assert sim.now == 2.0


def test_reentrant_run_rejected(sim):
    def recurse():
        sim.run()

    sim.schedule(1.0, recurse)
    with pytest.raises(SimulationError):
        sim.run()


def test_processed_events_counter(sim):
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.processed_events == 5


def test_pending_events_excludes_cancelled(sim):
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_events == 1
    assert keep.pending
    assert not drop.pending


def test_consumed_event_cannot_be_cancelled_late(sim):
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    sim.run()
    handle.cancel()  # no-op: already consumed
    assert fired == [1]


def test_call_later_binds_arguments(sim):
    seen = []
    call_later(sim, 1.0, lambda a, b: seen.append((a, b)), 1, 2)
    sim.run()
    assert seen == [(1, 2)]


def test_many_events_heap_stress(sim):
    import random as _random

    rnd = _random.Random(0)
    times = [rnd.uniform(0, 100) for _ in range(2000)]
    fired = []
    for t in times:
        sim.schedule(t, lambda t=t: fired.append(t))
    sim.run()
    assert fired == sorted(times)


# ------------------------------------------------------- clock contract
def test_max_events_does_not_clamp_to_until(sim):
    """Cut short by max_events with work still pending below the horizon:
    the clock must stay at the last executed event, not jump to until."""
    fired = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, lambda t=t: fired.append(t))
    sim.run(until=10.0, max_events=2)
    assert fired == [1.0, 2.0]
    assert sim.now == 2.0
    assert sim.pending_events == 1


def test_max_events_resume_continues_mid_stream(sim):
    fired = []
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.schedule(t, lambda t=t: fired.append(t))
    sim.run(max_events=1)
    sim.run(max_events=2)
    sim.run()
    assert fired == [1.0, 2.0, 3.0, 4.0]
    assert sim.now == 4.0


def test_until_clamps_when_next_event_beyond_horizon(sim):
    """Horizon genuinely reached (next event lies beyond it): clamp."""
    sim.schedule(5.0, lambda: None)
    sim.run(until=2.0)
    assert sim.now == 2.0
    assert sim.pending_events == 1


def test_stop_then_rerun_resumes_without_time_skip(sim):
    fired = []

    def stopper():
        fired.append(sim.now)
        sim.stop()

    sim.schedule(1.0, stopper)
    sim.schedule(1.0, lambda: fired.append(sim.now))  # same instant, later seq
    sim.schedule(2.0, lambda: fired.append(sim.now))
    sim.run(until=10.0)
    # Interrupted at t=1: the same-instant sibling has not fired yet and
    # the clock has not been clamped to the horizon.
    assert fired == [1.0]
    assert sim.now == 1.0
    assert sim.pending_events == 2
    sim.run(until=10.0)
    assert fired == [1.0, 1.0, 2.0]
    assert sim.now == 10.0


def test_schedule_between_stop_and_resume(sim):
    """stop() leaves the clock un-clamped, so follow-up scheduling relative
    to now lands where the interrupted timeline expects it."""
    sim.schedule(1.0, sim.stop)
    sim.run(until=4.0)
    assert sim.now == 1.0
    fired = []
    sim.schedule(0.5, lambda: fired.append(sim.now))
    sim.run(until=4.0)
    assert fired == [1.5]
    assert sim.now == 4.0


# ------------------------------------------------------------ call_later
def test_call_later_passes_priority_through(sim):
    """Regression: ``call_later`` used to drop ``priority``, losing the
    intended same-instant ordering of helpers scheduled through it."""
    order = []
    call_later(sim, 1.0, order.append, "late", priority=5)
    call_later(sim, 1.0, order.append, "early", priority=-5)
    sim.run()
    assert order == ["early", "late"]


def test_call_later_name_defaults_to_callable_name(sim):
    def beacon_timer():
        pass

    event = call_later(sim, 1.0, beacon_timer)
    assert event.name == "beacon_timer"
    named = call_later(sim, 1.0, beacon_timer, name="custom")
    assert named.name == "custom"


def test_events_are_not_comparable():
    """Backends order raw key tuples; Event deliberately has no __lt__."""
    sim = Simulator()
    a = sim.schedule(1.0, lambda: None)
    b = sim.schedule(2.0, lambda: None)
    with pytest.raises(TypeError):
        a < b  # noqa: B015 - the comparison itself is the assertion


# ------------------------------------------------------------ compaction
def test_mass_cancellation_compacts_backlog(sim):
    """90%-cancel churn: the backlog must stay bounded by compaction
    instead of holding every corpse until its original expiry."""
    handles = [sim.schedule(1.0 + i * 1e-4, lambda: None) for i in range(4000)]
    for i, handle in enumerate(handles):
        if i % 10:
            handle.cancel()
    stats = sim.scheduler_stats()
    assert stats["compactions"] >= 1
    # Dead fraction is kept below half of a >COMPACT_MIN_BACKLOG backlog.
    assert stats["backlog"] < 2 * sim.pending_events + 512
    fired = []
    for handle in handles:
        if handle.pending:
            handle.callback = lambda: fired.append(1)  # type: ignore[method-assign]
    sim.run()
    assert len(fired) == 400


def test_small_backlogs_never_compact(sim):
    handles = [sim.schedule(1.0, lambda: None) for _ in range(100)]
    for handle in handles:
        handle.cancel()
    assert sim.scheduler_stats()["compactions"] == 0
