"""Scheduler-backend equivalence at the engine and scenario level.

Three layers, mirroring the medium's grid-vs-brute and the crypto
cache's on/off/cross suites:

1. **Engine semantics** — the full clock contract (ordering, stop/
   resume, ``max_events``, drain-after-stop) parametrized over every
   ``scheduler_mode``, plus the compaction bound under mass-cancel
   churn.
2. **End-to-end invariance** — a full scenario emits *byte-identical
   traces* under ``heap``/``wheel``/``cross`` for multiple seeds, with
   cross mode re-proving pop equivalence on every event.
3. **The committed benchmark artifact** — ``BENCH_engine.json`` must
   record the acceptance-criterion speedups (the CI bench job
   regenerates and gates; this suite floors the committed numbers).
"""

from __future__ import annotations

import json
import pathlib
import random

import pytest

from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.metrics import format_engine_report, scheduler_counters, tracer_counters
from repro.sim.engine import SCHEDULER_MODES, Simulator


@pytest.fixture(params=SCHEDULER_MODES)
def msim(request) -> Simulator:
    """A simulator per scheduler mode (small wheel so tests cross the
    window/overflow boundary without millions of empty buckets)."""
    return Simulator(
        scheduler_mode=request.param, wheel_resolution=1e-3, wheel_slots=32
    )


# ---------------------------------------------------------- engine semantics
def test_rejects_unknown_mode():
    with pytest.raises(ValueError):
        Simulator(scheduler_mode="calendar")


def test_scheduler_mode_property(msim):
    assert msim.scheduler_mode in SCHEDULER_MODES


def test_ordering_time_priority_seq(msim):
    order = []
    msim.schedule(2.0, lambda: order.append("late"))
    msim.schedule(1.0, lambda: order.append("t1-a"))
    msim.schedule(1.0, lambda: order.append("t1-b"))  # same instant: FIFO
    msim.schedule(1.0, lambda: order.append("t1-pri"), priority=-1)
    msim.run()
    assert order == ["t1-pri", "t1-a", "t1-b", "late"]


def test_run_until_inclusive_and_clamped(msim):
    fired = []
    msim.schedule(5.0, lambda: fired.append(1))
    msim.schedule(7.0, lambda: fired.append(2))
    msim.run(until=5.0)
    assert fired == [1]
    assert msim.now == 5.0
    msim.run(until=20.0)
    assert fired == [1, 2]
    assert msim.now == 20.0


def test_max_events_leaves_clock_mid_stream(msim):
    fired = []
    for t in (1.0, 2.0, 3.0):
        msim.schedule(t, lambda t=t: fired.append(t))
    msim.run(until=10.0, max_events=2)
    assert fired == [1.0, 2.0]
    assert msim.now == 2.0
    msim.run(until=10.0)
    assert fired == [1.0, 2.0, 3.0]
    assert msim.now == 10.0


def test_stop_then_resume_without_time_skip(msim):
    fired = []

    def stopper():
        fired.append(msim.now)
        msim.stop()

    msim.schedule(1.0, stopper)
    msim.schedule(1.0, lambda: fired.append(msim.now))  # same-instant sibling
    msim.schedule(2.0, lambda: fired.append(msim.now))
    msim.run(until=10.0)
    assert fired == [1.0]
    assert msim.now == 1.0  # not clamped: the run was interrupted
    msim.run(until=10.0)
    assert fired == [1.0, 1.0, 2.0]
    assert msim.now == 10.0


def test_drain_after_stop_keeps_clock_at_last_event(msim):
    """Queue drains in the same iteration stop() fires: still an
    interrupted run — the clock must not jump to the horizon."""
    msim.schedule(1.0, msim.stop)  # the only event
    msim.run(until=10.0)
    assert msim.now == 1.0


def test_nested_scheduling_across_the_wheel_window(msim):
    """Events scheduled from callbacks land correctly whether they hit
    the ready heap, a near bucket, or the overflow heap."""
    fired = []

    def fan_out():
        msim.schedule(0.0, lambda: fired.append("same-instant"))
        msim.schedule(0.004, lambda: fired.append("near"))
        msim.schedule(5.0, lambda: fired.append("far"))

    msim.schedule(1.0, fan_out)
    msim.run()
    assert fired == ["same-instant", "near", "far"]
    assert msim.now == 6.0


def test_mass_cancel_churn_keeps_backlog_bounded(msim):
    """90% of a large backlog cancelled: compaction must bound the
    backend's backlog instead of holding corpses to their expiry."""
    handles = [
        msim.schedule(0.001 + 1e-5 * i, lambda: None) for i in range(5000)
    ]
    for i, handle in enumerate(handles):
        if i % 10:
            handle.cancel()
    stats = scheduler_counters(msim)
    assert stats["compactions"] >= 1
    assert stats["backlog"] < 2 * msim.pending_events + 512
    assert msim.pending_events == 500
    msim.run()
    assert msim.processed_events == 500


@pytest.mark.parametrize("mode", SCHEDULER_MODES)
def test_randomized_workload_equivalent_across_modes(mode):
    """The same randomized schedule/cancel workload fires the identical
    (time, tag) sequence in every mode; asserting against the heap
    reference makes any divergence point at the wheel."""

    def workload(m: str) -> list:
        sim = Simulator(scheduler_mode=m, wheel_resolution=1e-3, wheel_slots=16)
        rnd = random.Random(99)
        fired = []
        handles = []

        def emitter(tag: int):
            fired.append((sim.now, tag))
            for _ in range(rnd.randint(0, 2)):
                tag2 = rnd.randint(0, 10**6)
                delay = rnd.choice([0.0, 1e-4, 3e-3, 0.02, 1.5]) * rnd.random()
                handles.append(
                    sim.schedule(delay, lambda t=tag2: emitter(t), priority=rnd.randint(-1, 1))
                )
            if handles and rnd.random() < 0.3:
                handles.pop(rnd.randrange(len(handles))).cancel()

        for i in range(40):
            handles.append(sim.schedule(rnd.random() * 2.0, lambda t=i: emitter(t)))
        sim.run(max_events=4000)
        return fired

    assert workload(mode) == workload("heap")


# ------------------------------------------------------ scenario invariance
def _scenario_config(seed: int, mode: str) -> ScenarioConfig:
    return ScenarioConfig(
        protocol="agfw",
        num_nodes=14,
        sim_time=5.0,
        traffic_start=(0.5, 1.5),
        num_flows=5,
        num_senders=5,
        seed=seed,
        keep_trace=True,
        scheduler_mode=mode,
    )


def _trace_fingerprint(seed: int, mode: str) -> list:
    """Full-scenario trace reduced to the in-process-stable fields
    (packet/frame uids are audited module counters; see DET-006)."""
    scenario = Scenario(_scenario_config(seed, mode))
    result = scenario.run()
    records = [(repr(r.time), r.category, r.node) for r in scenario.tracer.records]
    assert records, "keep_trace scenario must retain records"
    return [(result.sent, result.delivered)] + records


@pytest.mark.parametrize("seed", [5, 23])
def test_scenario_traces_byte_identical_across_modes(seed):
    """The acceptance criterion: a full mobile AGFW scenario emits
    byte-identical traces under heap, wheel, and cross — and cross mode's
    per-pop coherence assertions all hold."""
    heap = _trace_fingerprint(seed, "heap")
    wheel = _trace_fingerprint(seed, "wheel")
    cross = _trace_fingerprint(seed, "cross")
    assert wheel == heap
    assert cross == heap


def test_scenario_wheel_mode_actually_exercises_the_wheel():
    """Guard against the fast path silently disconnecting: a scenario in
    wheel mode must bin events into near buckets and re-base across
    sparse phases."""
    scenario = Scenario(_scenario_config(seed=5, mode="wheel"))
    scenario.run()
    stats = scheduler_counters(scenario.sim)
    assert stats["processed"] > 1000
    assert stats["rebases"] >= 1


def test_engine_report_formats(msim):
    msim.schedule(1.0, lambda: None)
    msim.run()
    from repro.sim.trace import Tracer

    tracer = Tracer()
    tracer.emit(0.0, "app.send", node=0)
    report = format_engine_report(msim, tracer)
    assert f"scheduler ({msim.scheduler_mode})" in report
    assert "processed" in report and "retained_records" in report
    assert tracer_counters(tracer)["retained_records"] == 1


# ------------------------------------------------------- committed baseline
def test_committed_engine_baseline_meets_speedup_floors():
    """The acceptance criterion lives in the committed artifact: the
    recorded wheel-vs-heap speedup on the MAC-timer-churn microbench
    must be >= 2x, and the end-to-end scenario must not regress."""
    path = pathlib.Path(__file__).parent.parent / "benchmarks" / "BENCH_engine.json"
    document = json.loads(path.read_text(encoding="utf-8"))
    assert document["schema_version"] == 1
    assert document["suite"] == "engine"
    assert document["derived"]["mac_timer_churn_wheel_speedup"] >= 2.0
    assert document["derived"]["scenario_wheel_speedup"] >= 1.0
    assert document["derived"]["trace_drop_path_speedup"] >= 1.0
