"""Parallel sweep execution: order preservation and byte-identity.

The contract sold by ``--jobs``: the formatted output of every
experiment is byte-identical for any job count.  That holds because (a)
each point is an independent simulation whose randomness is a pure
function of its config, and (b) :func:`repro.experiments.parallel.
parallel_map` returns results in submission order.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

from repro.experiments.fig1 import run_fig1
from repro.experiments.faults_sweep import run_faults_sweep
from repro.experiments.parallel import parallel_map
from repro.experiments.runner import main as runner_main


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise RuntimeError(f"worker failure on {x}")


# ------------------------------------------------------------ parallel_map
def test_parallel_map_preserves_order_inline():
    assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]


def test_parallel_map_preserves_order_pooled():
    items = list(range(20))
    assert parallel_map(_square, items, jobs=4) == [x * x for x in items]


def test_parallel_map_rejects_bad_jobs():
    with pytest.raises(ValueError):
        parallel_map(_square, [1], jobs=0)


def test_parallel_map_single_item_runs_inline():
    # One item never spins up a pool (worth asserting: pool startup for a
    # single point would dominate small sweeps).
    assert parallel_map(_square, [5], jobs=8) == [25]


def test_parallel_map_propagates_worker_errors():
    with pytest.raises(RuntimeError, match="worker failure"):
        parallel_map(_boom, [1, 2], jobs=2)


# ------------------------------------------------------------- experiments
def test_fig1_points_identical_serial_vs_parallel():
    kwargs = dict(node_counts=(12, 16), schemes=("agfw",), sim_time=3.0, seed=9)
    serial = run_fig1(jobs=1, **kwargs)
    pooled = run_fig1(jobs=2, **kwargs)
    assert serial == pooled  # Fig1Point is a frozen dataclass: full equality


def test_faults_sweep_identical_serial_vs_parallel():
    """Impaired points (loss draws + churn plans) stay a pure function of
    their config: fanning the sweep over workers changes nothing."""
    kwargs = dict(
        loss_rates=(0.3,), churn_rates=(1.5,), schemes=("agfw",),
        num_nodes=12, sim_time=3.0, seed=9,
    )
    serial = run_faults_sweep(jobs=1, **kwargs)
    pooled = run_faults_sweep(jobs=2, **kwargs)
    assert serial == pooled  # FaultPoint is a frozen dataclass: full equality
    assert any(p.drops_injected > 0 for p in serial)
    assert any(p.crashes > 0 for p in serial)


def test_fig1_churn_parameter_threads_fault_plans():
    """run_fig1(churn=...) doses every point; the default path is untouched."""
    plain = run_fig1(node_counts=(12,), schemes=("gpsr",), sim_time=3.0, seed=4)
    churned = run_fig1(
        node_counts=(12,), schemes=("gpsr",), sim_time=3.0, seed=4, churn=(3.0, 0.5)
    )
    assert plain != churned  # the plan actually bit


def test_runner_output_byte_identical_across_jobs(capsys):
    argv = ["--sim-time", "3", "--nodes", "12", "--skip", "als", "exposure", "faults"]
    assert runner_main(argv + ["--jobs", "1"]) == 0
    serial_out = capsys.readouterr().out
    assert runner_main(argv + ["--jobs", "3"]) == 0
    pooled_out = capsys.readouterr().out
    assert serial_out == pooled_out
    assert "Figure 1(a)" in serial_out


# ------------------------------------------------------------ bench harness
def _load_bench_to_json():
    path = pathlib.Path(__file__).parent.parent / "benchmarks" / "bench_to_json.py"
    spec = importlib.util.spec_from_file_location("bench_to_json", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _doc(means: dict) -> dict:
    return {
        "schema_version": 1,
        "suite": "substrate",
        "benchmarks": {
            name: {"mean_s": mean, "stddev_s": 0.0, "rounds": 5}
            for name, mean in means.items()
        },
        "derived": {},
    }


def test_bench_distill_schema_and_derived_speedup():
    harness = _load_bench_to_json()
    raw = {
        "benchmarks": [
            {
                "name": "test_medium_fanout_150_nodes[brute]",
                "stats": {"mean": 0.060, "stddev": 0.001, "rounds": 10},
            },
            {
                "name": "test_medium_fanout_150_nodes[grid]",
                "stats": {"mean": 0.015, "stddev": 0.001, "rounds": 40},
            },
        ]
    }
    document = harness.distill(raw)
    assert document["schema_version"] == harness.SCHEMA_VERSION
    assert document["suite"] == "substrate"
    assert document["derived"]["fanout_speedup_150_nodes"] == 4.0


def test_bench_distill_shard_suite_extra_info_and_literal_specs():
    """The shard suite derives speedups from recorded CPU times and
    publishes raw counters through a literal denominator of 1."""
    harness = _load_bench_to_json()
    raw = {
        "benchmarks": [
            {
                "name": "test_shard_scenario[engine-2000]",
                "stats": {"mean": 6.0, "stddev": 0.1, "rounds": 2},
                "extra_info": {"cpu_seconds": 5.0},
            },
            {
                "name": "test_shard_scenario[shards4-2000]",
                "stats": {"mean": 14.0, "stddev": 0.1, "rounds": 2},
                "extra_info": {
                    "critical_path_seconds": 1.25,
                    "ipc_messages_per_round": 8.0,
                },
            },
        ]
    }
    document = harness.distill(raw, "shard")
    assert document["derived"]["shard4_speedup_2000_nodes"] == 4.0
    assert document["derived"]["shard4_ipc_messages_per_round_2000_nodes"] == 8.0
    # Benchmarks absent from the run simply omit their derived metrics.
    assert "shard8_speedup_10000_nodes" not in document["derived"]


def test_bench_compare_flags_regressions_only():
    harness = _load_bench_to_json()
    baseline = _doc({"a": 0.010, "b": 0.010})
    improved_and_regressed = _doc({"a": 0.009, "b": 0.025})
    failures = harness.compare(improved_and_regressed, baseline, max_regression=2.0)
    assert len(failures) == 1
    assert failures[0].startswith("b:")
    assert harness.compare(improved_and_regressed, baseline, max_regression=3.0) == []


def test_committed_baseline_meets_speedup_floor():
    """The acceptance criterion lives in the committed artifact: the
    recorded grid-vs-brute fan-out speedup at 150 nodes must be >= 3x."""
    import json

    path = pathlib.Path(__file__).parent.parent / "benchmarks" / "BENCH_substrate.json"
    document = json.loads(path.read_text(encoding="utf-8"))
    assert document["schema_version"] == 1
    assert document["derived"]["fanout_speedup_150_nodes"] >= 3.0


def test_committed_faults_baseline_within_overhead_budget():
    """The committed faults artifact pins the impairment cost contract:
    every regime's end-to-end overhead vs the unimpaired leg stays under
    2x (impairment provokes protocol work — retransmissions — but must
    never blow the run up), and the ``none`` leg is present as the
    zero-cost-when-disabled reference point."""
    import json

    path = pathlib.Path(__file__).parent.parent / "benchmarks" / "BENCH_faults.json"
    document = json.loads(path.read_text(encoding="utf-8"))
    assert document["schema_version"] == 1
    assert document["suite"] == "faults"
    for metric in (
        "bernoulli_scenario_overhead",
        "gilbert_scenario_overhead",
        "churn_scenario_overhead",
    ):
        assert 0.0 < document["derived"][metric] < 2.0, metric
    assert "test_scenario_impairment[none]" in document["benchmarks"]


# ------------------------------------------- crypto fast path (PR 3)
def _real_crypto_digest(seed: int) -> tuple:
    """Worker: run one real-crypto scenario (caches on) and digest its trace.

    Module-level so it pickles into pool workers.  The digest covers
    ``(time, category, node)`` per record — stable across processes,
    unlike packet uids which come from per-process counters.
    """
    import hashlib

    from repro.experiments.scenario import Scenario, ScenarioConfig

    scenario = Scenario(
        ScenarioConfig(
            protocol="agfw",
            num_nodes=10,
            sim_time=3.0,
            traffic_start=(0.5, 1.5),
            num_flows=3,
            num_senders=3,
            seed=seed,
            real_crypto=True,
            aant_ring_size=2,
            keep_trace=True,
            crypto_cache_mode="on",
        )
    )
    result = scenario.run()
    records = tuple((repr(r.time), r.category, r.node) for r in scenario.tracer.records)
    digest = hashlib.sha256(repr(records).encode("utf-8")).hexdigest()
    return (result.sent, result.delivered, digest)


def test_real_crypto_parallel_byte_identical_with_caches():
    """--jobs byte-identity must survive the crypto memo caches: pool
    workers start cold while the inline path may run warm, so equality
    here is a direct test of cache outcome-invisibility across processes."""
    seeds = [3, 4]
    serial = parallel_map(_real_crypto_digest, seeds, jobs=1)
    pooled = parallel_map(_real_crypto_digest, seeds, jobs=2)
    assert serial == pooled


# ------------------------------------------- scheduler backends (PR 4)
def _scheduler_digest(args: tuple) -> tuple:
    """Worker: one scenario under a given scheduler_mode, trace digested.

    Module-level so it pickles into pool workers; digest fields are the
    in-process-stable ones (see _real_crypto_digest)."""
    import hashlib

    from repro.experiments.scenario import Scenario, ScenarioConfig

    seed, mode = args
    scenario = Scenario(
        ScenarioConfig(
            protocol="agfw",
            num_nodes=12,
            sim_time=3.0,
            traffic_start=(0.5, 1.5),
            num_flows=3,
            num_senders=3,
            seed=seed,
            keep_trace=True,
            scheduler_mode=mode,
        )
    )
    result = scenario.run()
    records = tuple((repr(r.time), r.category, r.node) for r in scenario.tracer.records)
    digest = hashlib.sha256(repr(records).encode("utf-8")).hexdigest()
    return (result.sent, result.delivered, digest)


def test_scheduler_modes_byte_identical_across_jobs():
    """The tentpole's cross-cutting contract: traces are byte-identical
    across scheduler backends AND across --jobs pools.  Every (seed,
    mode) cell must agree serial-vs-pooled, and within a seed all three
    modes must agree with each other."""
    cells = [(seed, mode) for seed in (7, 8) for mode in ("heap", "wheel", "cross")]
    serial = parallel_map(_scheduler_digest, cells, jobs=1)
    pooled = parallel_map(_scheduler_digest, cells, jobs=3)
    assert serial == pooled
    by_seed = {}
    for (seed, _mode), digest in zip(cells, serial):
        by_seed.setdefault(seed, set()).add(digest)
    assert all(len(digests) == 1 for digests in by_seed.values())


def test_runner_scheduler_flag_output_byte_identical(capsys):
    argv = ["--sim-time", "3", "--nodes", "12", "--skip", "als", "exposure", "aant", "faults"]
    assert runner_main(argv + ["--scheduler", "heap"]) == 0
    heap_out = capsys.readouterr().out
    assert runner_main(argv + ["--scheduler", "wheel", "--jobs", "2"]) == 0
    wheel_out = capsys.readouterr().out
    assert heap_out == wheel_out
    assert "Figure 1(a)" in heap_out


def test_bench_distill_crypto_suite_derived_ratios():
    harness = _load_bench_to_json()
    raw = {
        "benchmarks": [
            {
                "name": "test_hello_verify_ring5_10_receivers[off]",
                "stats": {"mean": 0.009, "stddev": 0.0, "rounds": 5},
            },
            {
                "name": "test_hello_verify_ring5_10_receivers[on]",
                "stats": {"mean": 0.001, "stddev": 0.0, "rounds": 5},
            },
        ]
    }
    document = harness.distill(raw, "crypto")
    assert document["suite"] == "crypto"
    assert document["derived"]["hello_verify_cached_speedup"] == 9.0
    # Ratios whose benchmarks did not run are omitted, not zeroed.
    assert "trapdoor_open_cached_speedup" not in document["derived"]


# ------------------------------------------- hard worker death (PR 10)
def _die_on_marker(item: str) -> str:
    """Worker: SIGKILL its own process on the marked item — the closest
    stand-in for an OOM kill the kernel can deliver."""
    import os
    import signal

    if item == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    return item


def test_parallel_map_surfaces_hard_worker_death():
    """Regression: multiprocessing.Pool.map hangs forever when a worker
    is killed hard (its task is simply lost).  parallel_map must instead
    raise WorkerCrashError naming every unfinished point."""
    from repro.experiments.parallel import WorkerCrashError

    with pytest.raises(WorkerCrashError, match="terminated abruptly") as err:
        parallel_map(
            _die_on_marker,
            ["alpha", "die", "beta", "gamma"],
            jobs=2,
            describe=lambda item: f"point:{item}",
        )
    # The crashed point is indistinguishable from in-flight siblings, so
    # it must be among the reported unfinished points.
    assert "point:die" in str(err.value)
    assert "point:die" in err.value.points


def test_parallel_map_worker_death_leaves_completed_results_unreported():
    # Sanity: the same marker item runs fine inline (no pool to crash).
    assert parallel_map(_die_on_marker, ["alpha"], jobs=4) == ["alpha"]


def test_bench_aggregate_enumerates_sorted_regardless_of_discovery_order(
    tmp_path, monkeypatch
):
    """Regression (DET-012 class): aggregate() must not depend on
    filesystem enumeration order, which is machine- and history-
    dependent.  Shuffle what glob returns; the document must not move."""
    import json
    import random

    harness = _load_bench_to_json()
    for suite in ("zulu", "alpha", "mike"):
        doc = {
            "schema_version": 1,
            "suite": suite,
            "benchmarks": {f"bench_{suite}": {"mean_s": 0.01, "stddev_s": 0.0, "rounds": 3}},
            "derived": {f"{suite}_ratio": 2.0},
        }
        (tmp_path / f"BENCH_{suite}.json").write_text(json.dumps(doc), encoding="utf-8")

    baseline = harness.aggregate(tmp_path)
    real_glob = pathlib.Path.glob
    for shuffle_seed in (1, 2, 3):
        def shuffled(self, pattern, _seed=shuffle_seed):
            entries = list(real_glob(self, pattern))
            random.Random(_seed).shuffle(entries)
            return iter(entries)

        monkeypatch.setattr(pathlib.Path, "glob", shuffled)
        assert harness.aggregate(tmp_path) == baseline
        monkeypatch.undo()
    assert baseline["suites"] == ["alpha", "mike", "zulu"]
