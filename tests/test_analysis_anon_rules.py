"""Per-rule fixtures for the ANON anonymity-invariant family.

The fixtures subclass the real ``Packet`` root so the project pre-pass
recognizes the constructors as wire-visible sinks, then try the leak
paths the paper rules out: identities and MAC addresses in packet
fields, directly or through local variables, f-strings and clones.
"""

from __future__ import annotations

from tests.analysis_helpers import PACKET_PREAMBLE, lint_source, rule_ids


# ------------------------------------------------------------------ ANON-001
def test_anon001_identity_kwarg(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def send_hello(node, mac):
            packet = Probe(sender=node.identity)
            mac.send(packet)
        """,
        select=["ANON-001"],
    )
    assert rule_ids(result) == ["ANON-001"]
    assert "identity" in result.findings[0].message


def test_anon001_positional_arg(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def send_hello(node):
            return Probe(node.identity)
        """,
        select=["ANON-001"],
    )
    assert rule_ids(result) == ["ANON-001"]
    assert "positional arg 0" in result.findings[0].message


def test_anon001_via_local_variable(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def send_hello(node):
            who = node.identity
            return Probe(sender=who)
        """,
        select=["ANON-001"],
    )
    assert rule_ids(result) == ["ANON-001"]


def test_anon001_fstring_leak(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def send_hello(node):
            return Probe(sender=f"fwd-{node.identity}")
        """,
        select=["ANON-001"],
    )
    assert rule_ids(result) == ["ANON-001"]


def test_anon001_packet_field_assignment(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def send_hello(node):
            packet = Probe()
            packet.sender = node.identity
            return packet
        """,
        select=["ANON-001"],
    )
    assert rule_ids(result) == ["ANON-001"]
    assert "packet.sender" in result.findings[0].message


def test_anon001_clone_for_forwarding(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def forward(packet, node):
            return packet.clone_for_forwarding(sender=node.identity)
        """,
        select=["ANON-001"],
    )
    assert rule_ids(result) == ["ANON-001"]


def test_anon001_certificate_subject_is_seed(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def advertise(cert):
            return Probe(sender=cert.subject)
        """,
        select=["ANON-001"],
    )
    assert rule_ids(result) == ["ANON-001"]


def test_anon001_sanitized_by_make_index(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def update(node, make_index):
            return Probe(sender=make_index(node.identity))
        """,
        select=["ANON-001"],
    )
    assert result.findings == []


def test_anon001_sanitized_by_trapdoor_seal(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def originate(node, factory):
            return Probe(payload=factory.seal(node.identity))
        """,
        select=["ANON-001"],
    )
    assert result.findings == []


def test_anon001_pseudonym_passes(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def send_hello(node):
            return Probe(sender=node.pseudonym)
        """,
        select=["ANON-001"],
    )
    assert result.findings == []


def test_anon001_crypto_paths_are_allowlisted(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def enroll(node):
            return Probe(sender=node.identity)
        """,
        select=["ANON-001"],
        rel="src/repro/crypto/enrollment.py",
    )
    assert result.findings == []


def test_anon001_noqa_marks_deliberate_baseline_leak(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def send_hello(node):
            return Probe(
                sender=node.identity,  # repro: noqa[ANON-001] baseline leak
            )
        """,
        select=["ANON-001"],
    )
    assert result.findings == []
    assert [f.rule_id for f in result.suppressed] == ["ANON-001"]


def test_anon001_identity_linked_position_doublet(tmp_path):
    # A position looked up *by identity* is the (identity, location)
    # doublet the paper hides; it stays tainted through the record.
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def serve(store, identity):
            entry = store.get(identity)
            return Probe(payload=entry.position)
        """,
        select=["ANON-001"],
    )
    assert rule_ids(result) == ["ANON-001"]


def test_anon001_timestamp_of_looked_up_entry_passes(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def serve(store, identity):
            entry = store.get(identity)
            return Probe(payload=entry.timestamp)
        """,
        select=["ANON-001"],
    )
    assert result.findings == []


# ------------------------------------------------------------------ ANON-002
def test_anon002_mac_attribute(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def announce(node):
            return Probe(sender=node.address)
        """,
        select=["ANON-002"],
    )
    assert rule_ids(result) == ["ANON-002"]
    assert "MAC address" in result.findings[0].message


def test_anon002_mac_for_node_call(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        from repro.net.addresses import mac_for_node

        def announce(index):
            return Probe(sender=mac_for_node(index))
        """,
        select=["ANON-002"],
    )
    assert rule_ids(result) == ["ANON-002"]


def test_anon002_mac_frames_module_is_allowlisted(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def frame(node):
            return Probe(sender=node.address)
        """,
        select=["ANON-002"],
        rel="src/repro/net/mac/frames.py",
    )
    assert result.findings == []


def test_anon002_broadcast_constant_passes(tmp_path):
    result = lint_source(
        tmp_path,
        PACKET_PREAMBLE
        + """\
        def announce(node, payload):
            return Probe(sender="broadcast", payload=payload)
        """,
        select=["ANON-002"],
    )
    assert result.findings == []
