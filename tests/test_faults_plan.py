"""FaultPlan / FaultInjector: schedules, determinism, and down semantics."""

from __future__ import annotations

import pickle

import pytest

from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.geo.vec import Position
from repro.metrics.faults import FaultMetrics
from tests.conftest import build_static_net, line_positions

LINE3 = line_positions(3)


# ----------------------------------------------------------------- plan data
def test_fault_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(-1.0, 0, "crash")
    with pytest.raises(ValueError):
        FaultEvent(1.0, 0, "teleport")


def test_plan_builders_chain_and_are_immutable():
    base = FaultPlan()
    plan = base.crash(2, at=1.0).recover(2, at=3.0).pause(5, at=2.0, duration=0.5)
    assert len(base) == 0 and not base
    assert len(plan) == 4 and plan
    assert plan.node_ids() == (2, 5)
    with pytest.raises(ValueError):
        plan.pause(1, at=0.0, duration=-1.0)


def test_sorted_events_canonical_order():
    plan = FaultPlan().recover(1, at=2.0).crash(0, at=2.0).crash(1, at=2.0)
    ordered = plan.sorted_events()
    # Same instant: node id first, then crash before recover.
    assert [(e.node_id, e.action) for e in ordered] == [
        (0, "crash"),
        (1, "crash"),
        (1, "recover"),
    ]


def test_plan_pickles_roundtrip():
    plan = FaultPlan.churn(range(5), sim_time=10.0, seed=3, rate=2.0, mean_downtime=1.0)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone == plan


# --------------------------------------------------------------------- churn
def test_churn_is_deterministic_per_seed():
    kwargs = dict(sim_time=20.0, rate=2.0, mean_downtime=1.5)
    assert FaultPlan.churn(range(8), seed=5, **kwargs) == FaultPlan.churn(
        range(8), seed=5, **kwargs
    )
    assert FaultPlan.churn(range(8), seed=5, **kwargs) != FaultPlan.churn(
        range(8), seed=6, **kwargs
    )


def test_churn_per_node_streams_compose():
    """A node's schedule is a pure function of (seed, node); membership of
    the churn set never perturbs it."""
    kwargs = dict(sim_time=20.0, seed=5, rate=2.0, mean_downtime=1.5)
    solo = FaultPlan.churn([3], **kwargs)
    grouped = FaultPlan.churn([1, 2, 3], **kwargs)
    assert [e for e in grouped.events if e.node_id == 3] == list(solo.events)


def test_churn_respects_horizon_and_rate_zero():
    plan = FaultPlan.churn(range(10), sim_time=30.0, seed=1, rate=1.0, mean_downtime=2.0)
    assert all(e.time < 30.0 for e in plan.events)
    assert not FaultPlan.churn(range(10), sim_time=30.0, seed=1, rate=0.0)
    with pytest.raises(ValueError):
        FaultPlan.churn(range(3), sim_time=0.0, seed=1)
    with pytest.raises(ValueError):
        FaultPlan.churn(range(3), sim_time=1.0, seed=1, mean_downtime=0.0)


# ------------------------------------------------------------------ injector
def test_injector_rejects_unknown_node_ids():
    net = build_static_net(LINE3, protocol="gpsr")
    plan = FaultPlan().crash(99, at=1.0)
    with pytest.raises(ValueError):
        FaultInjector(net.sim, net.nodes, plan, FaultMetrics())


def test_crash_takes_node_genuinely_down():
    plan = FaultPlan().crash(1, at=2.0)
    net = build_static_net(LINE3, protocol="gpsr", fault_plan=plan)
    net.sim.run(until=8.0)
    node = net.nodes[1]
    assert node.down and node.phy.down and node.mac.down
    assert net.fault_injector.is_down(1) and net.fault_injector.any_down
    # Beacons stopped: the crashed node ages out of both neighbors' tables.
    assert "node-1" not in net.nodes[0].router.table
    assert "node-1" not in net.nodes[2].router.table
    m = net.fault_metrics
    assert m.crashes == 1 and m.recoveries == 0
    net.fault_injector.finalize(net.sim.now)
    assert m.downtime_s == pytest.approx(net.sim.now - 2.0)


def test_recover_reboots_node_and_it_rejoins():
    plan = FaultPlan().pause(1, at=2.0, duration=3.0)
    net = build_static_net(LINE3, protocol="gpsr", fault_plan=plan)
    net.sim.run(until=12.0)
    node = net.nodes[1]
    assert not node.down
    m = net.fault_metrics
    assert m.crashes == 1 and m.recoveries == 1
    assert m.downtime_s == pytest.approx(3.0)
    # Rebooted node beacons again and is re-learned by its neighbors.
    assert "node-1" in net.nodes[0].router.table
    assert "node-1" in net.nodes[2].router.table


def test_injector_idempotent_under_duplicate_events():
    plan = FaultPlan().crash(0, at=1.0).crash(0, at=1.5).recover(0, at=2.0).recover(0, at=2.5)
    net = build_static_net(LINE3, protocol="gpsr", fault_plan=plan)
    net.sim.run(until=4.0)
    m = net.fault_metrics
    assert m.crashes == 1 and m.recoveries == 1
    assert m.downtime_s == pytest.approx(1.0)


def test_down_node_drops_tx_silently():
    plan = FaultPlan().crash(0, at=2.0)
    net = build_static_net(LINE3, protocol="gpsr", fault_plan=plan)
    net.sim.run(until=3.0)
    before = net.nodes[0].mac.stats.down_drops
    net.nodes[0].router.send_data("node-2", 64)
    net.sim.run(until=6.0)
    assert net.deliveries() == []  # nothing left the dead radio
    assert net.nodes[0].mac.stats.down_drops >= before


def test_fault_traces_emitted():
    plan = FaultPlan().pause(2, at=1.0, duration=1.0)
    net = build_static_net(LINE3, protocol="gpsr", fault_plan=plan)
    net.sim.run(until=4.0)
    crashes = list(net.tracer.filter("fault.crash"))
    recovers = list(net.tracer.filter("fault.recover"))
    assert [r.node for r in crashes] == [2]
    assert [r.node for r in recovers] == [2]
    assert crashes[0].time == pytest.approx(1.0)


def test_deliveries_during_downtime_counted():
    # Nodes 0-1 talk while an unrelated node (2) is down.
    positions = [Position(0, 0), Position(150, 0), Position(5000, 5000)]
    plan = FaultPlan().crash(2, at=1.0)
    net = build_static_net(positions, protocol="gpsr", fault_plan=plan)
    net.sim.run(until=3.0)
    net.nodes[0].router.send_data("node-1", 64)
    net.sim.run(until=6.0)
    assert [d[0] for d in net.deliveries()] == [1]
    assert net.fault_metrics.deliveries_during_downtime == 1
