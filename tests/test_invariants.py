"""Cross-cutting simulation invariants, property-tested over random
scenarios.

These are the "can't happen" guarantees downstream analyses rely on:
conservation (nothing delivered that was not sent), anonymity (no AGFW
wire image ever contains an identity), determinism, and accounting
consistency.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.sniffer import GlobalSniffer
from repro.adversary.tracker import DoubletTracker
from repro.experiments.scenario import Scenario, ScenarioConfig


def _tiny(protocol: str, seed: int, num_nodes: int = 20) -> ScenarioConfig:
    return ScenarioConfig(
        protocol=protocol,
        num_nodes=num_nodes,
        sim_time=6.0,
        traffic_start=(0.5, 2.0),
        num_flows=6,
        num_senders=5,
        seed=seed,
    )


@given(st.integers(min_value=0, max_value=10_000),
       st.sampled_from(["gpsr", "agfw", "agfw-noack"]))
@settings(max_examples=8, deadline=None)
def test_conservation_properties(seed, protocol):
    scenario = Scenario(_tiny(protocol, seed))
    result = scenario.run()
    # Delivered packets are a subset of sent packets.
    assert 0 <= result.delivered <= result.sent
    assert 0.0 <= result.delivery_fraction <= 1.0
    # Latency only exists if something was delivered, and is causal.
    if result.delivered:
        assert result.mean_latency > 0
        assert result.latency is not None and result.latency.minimum > 0
    # Accounting consistency.
    assert result.router_totals.originated == result.sent
    assert result.frames_on_air >= sum(result.frames_by_kind.values())
    # No phantom receivers: every app.recv was matched to an app.send
    # by the collector (unmatched would mean uid corruption).
    assert scenario.delivery.unmatched_recv == 0


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=5, deadline=None)
def test_agfw_never_puts_identity_on_the_air(seed):
    """The core anonymity invariant, property-tested across random
    scenarios: zero doublets in any AGFW capture."""
    config = _tiny("agfw", seed)
    config = ScenarioConfig(**{**config.__dict__, "with_sniffer": True})
    scenario = Scenario(config)
    scenario.run()
    assert scenario.sniffer is not None
    tracker = DoubletTracker()
    tracker.ingest(scenario.sniffer.observations)
    assert tracker.doublets == []
    for observation in scenario.sniffer.observations:
        assert "identity" not in observation.wire
        for value in observation.wire.values():
            assert "node-" not in str(value)


@given(st.integers(min_value=0, max_value=1_000))
@settings(max_examples=4, deadline=None)
def test_determinism_property(seed):
    """Identical seeds produce bit-identical outcomes, whatever the seed."""
    a = Scenario(_tiny("agfw", seed)).run()
    b = Scenario(_tiny("agfw", seed)).run()
    assert a.sent == b.sent
    assert a.delivered == b.delivered
    assert a.frames_on_air == b.frames_on_air
    assert a.mean_latency == pytest.approx(b.mean_latency)


def test_pseudonyms_on_air_are_all_fresh():
    """Every data packet's next-hop pseudonym was announced by some hello
    earlier in the run — forwarding never invents pseudonyms."""
    config = _tiny("agfw", 77)
    config = ScenarioConfig(**{**config.__dict__, "with_sniffer": True})
    scenario = Scenario(config)
    scenario.run()
    seen_pseudonyms: set[str] = set()
    for observation in scenario.sniffer.observations:
        if observation.packet_kind == "agfw.hello":
            seen_pseudonyms.add(observation.wire["pseudonym"])
        elif observation.packet_kind == "agfw.data":
            pseudonym = observation.wire["next_pseudonym"]
            if pseudonym != "0" * 12:  # the last-attempt marker
                assert pseudonym in seen_pseudonyms


def test_no_duplicate_app_deliveries():
    """End-to-end duplicate suppression holds under retransmissions."""
    scenario = Scenario(_tiny("agfw", 31))
    scenario.run()
    assert scenario.delivery.duplicate_recv == 0
