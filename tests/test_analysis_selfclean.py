"""The linter's contract with this repository.

Two halves: the tree stays clean under the full rule set (the CI gate),
and a planted violation of each family is actually caught with the
right rule id and location — i.e. the gate is not vacuously green.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro.analysis.cli import main
from repro.analysis.engine import analyze_paths

from tests.analysis_helpers import write_fixture

REPO_ROOT = Path(__file__).resolve().parents[1]


# ---------------------------------------------------------------- regression
def test_src_tree_is_clean_under_full_rule_set():
    result = analyze_paths([str(REPO_ROOT / "src")])
    assert result.errors == []
    assert result.findings == [], "\n".join(
        f"{f.location()}: {f.rule_id} {f.message}" for f in result.findings
    )


def test_tests_tree_is_clean_under_full_rule_set():
    result = analyze_paths([str(REPO_ROOT / "tests")])
    assert result.errors == []
    assert result.findings == [], "\n".join(
        f"{f.location()}: {f.rule_id} {f.message}" for f in result.findings
    )


def test_baseline_leaks_are_annotated_not_silent():
    """GPSR/DLM/ALS-fallback cleartext identities are suppressed findings,
    not invisible ones: the noqa catalog must keep firing."""
    result = analyze_paths([str(REPO_ROOT / "src")], select=["ANON-001"])
    suppressed_paths = sorted({f.path for f in result.suppressed})
    assert any(p.endswith("routing/gpsr.py") for p in suppressed_paths)
    assert any(p.endswith("location/dlm.py") for p in suppressed_paths)
    assert any(p.endswith("core/als.py") for p in suppressed_paths)


def test_whole_tree_passes_the_committed_baseline_gate():
    """The exact CI invocation: src+tests analyzed together (so
    cross-tree summaries are in play) gated by the committed baseline.
    The committed baseline is *empty* — the tree carries no known debt —
    which makes this the strongest form of the self-clean contract."""
    baseline_path = REPO_ROOT / "analysis_baseline.json"
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert payload["schema"] == 1
    assert payload["entries"] == {}, "tree should carry no baselined debt"

    out = io.StringIO()
    code = main(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests"),
         "--baseline", str(baseline_path)],
        stream=out,
    )
    assert code == 0, out.getvalue()


def test_engine_is_deterministic_across_runs():
    first = analyze_paths([str(REPO_ROOT / "src")])
    second = analyze_paths([str(REPO_ROOT / "src")])
    assert first.findings == second.findings
    assert first.suppressed == second.suppressed
    assert first.files_analyzed == second.files_analyzed


# ---------------------------------------------------- planted DET violation
_PLANTED_DET = """\
import random


def pick_forwarder(neighbors):
    rng = random.Random()
    return rng.choice(neighbors)
"""


def test_planted_unseeded_random_in_routing_is_caught(tmp_path):
    path = write_fixture(tmp_path, "src/repro/routing/planted.py", _PLANTED_DET)

    text_out = io.StringIO()
    assert main([str(path)], stream=text_out) == 1
    assert f"{path.as_posix()}:5:" in text_out.getvalue()
    assert "DET-002" in text_out.getvalue()

    json_out = io.StringIO()
    assert main([str(path), "--format", "json"], stream=json_out) == 1
    payload = json.loads(json_out.getvalue())
    rules = {f["rule"] for f in payload["findings"]}
    assert "DET-002" in rules
    (det,) = [f for f in payload["findings"] if f["rule"] == "DET-002"]
    assert det["line"] == 5
    assert det["path"] == path.as_posix()


# --------------------------------------------------- planted ANON violation
_PLANTED_ANON = """\
from repro.net.packet import Packet


class PlantedHello(Packet):
    KIND = "planted.hello"
    sender: str = ""

    def header_bytes(self) -> int:
        return 8


def send_hello(node, mac):
    hello = PlantedHello()
    hello.sender = node.identity
    mac.send(hello)
"""


def test_planted_identity_into_packet_is_caught(tmp_path):
    path = write_fixture(tmp_path, "src/repro/core/planted.py", _PLANTED_ANON)

    text_out = io.StringIO()
    assert main([str(path)], stream=text_out) == 1
    assert f"{path.as_posix()}:14:" in text_out.getvalue()
    assert "ANON-001" in text_out.getvalue()

    json_out = io.StringIO()
    assert main([str(path), "--format", "json"], stream=json_out) == 1
    payload = json.loads(json_out.getvalue())
    (anon,) = [f for f in payload["findings"] if f["rule"] == "ANON-001"]
    assert anon["line"] == 14
    assert anon["path"] == path.as_posix()
    assert "identity" in anon["message"]


# -------------------------------------------------- faults subsystem (DET)
def test_faults_subsystem_is_clean_under_det_rules():
    """The fault-injection subsystem draws all its randomness from
    per-purpose derived streams — the DET family must see nothing."""
    result = analyze_paths(
        [str(REPO_ROOT / "src" / "repro" / "faults")],
        select=["DET-001", "DET-002", "DET-003"],
    )
    assert result.errors == []
    assert result.findings == []
    assert result.files_analyzed >= 3  # __init__, loss, plan


_PLANTED_FAULTS_DET = """\
import random

_SHARED = random.Random()


def drop(rate):
    return _SHARED.random() < rate
"""


def test_planted_module_level_rng_in_faults_is_caught(tmp_path):
    """The gate over the faults tree is not vacuous: an unseeded
    module-level RNG planted there still fires DET-002."""
    path = write_fixture(tmp_path, "src/repro/faults/planted.py", _PLANTED_FAULTS_DET)
    result = analyze_paths([str(path)], select=["DET-002"])
    assert [f.rule_id for f in result.findings] == ["DET-002"]
    assert result.findings[0].line == 3
