"""Tests for AGFW extensions: perimeter recovery and piggybacked ACKs."""

from __future__ import annotations

import pytest

from repro.core.config import AgfwConfig
from repro.geo.vec import Position
from tests.conftest import build_static_net, line_positions

# Same void as the GPSR perimeter tests: node 1 is a true local maximum.
VOID_TOPOLOGY = [
    Position(0, 0),
    Position(250, 0),
    Position(100, 150),
    Position(200, 350),
    Position(400, 400),
    Position(560, 220),
    Position(600, 0),
]


def test_agfw_perimeter_recovers_around_void():
    """The paper's future work, implemented: face routing on the
    Gabriel-planarized ANT, next hops named by pseudonym."""
    net = build_static_net(
        VOID_TOPOLOGY, protocol="agfw",
        agfw_config=AgfwConfig(enable_perimeter=True),
    )
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-6", 64))
    net.sim.run(until=9.0)
    assert [d[0] for d in net.deliveries()] == [6]
    modes = {r.data.get("mode") for r in net.tracer.filter("route.forward")}
    assert "perimeter" in modes


def test_agfw_perimeter_disabled_drops():
    net = build_static_net(VOID_TOPOLOGY, protocol="agfw", agfw_config=AgfwConfig())
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-6", 64))
    net.sim.run(until=9.0)
    assert net.deliveries() == []


def test_agfw_perimeter_preserves_anonymity():
    """Perimeter-mode packets still carry no identities on the wire."""
    net = build_static_net(
        VOID_TOPOLOGY, protocol="agfw",
        agfw_config=AgfwConfig(enable_perimeter=True),
    )
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-6", 64))
    net.sim.run(until=9.0)
    for record in net.tracer.filter("phy.tx"):
        packet = record.data.get("packet_obj")
        if packet is None or packet.kind != "agfw.data":
            continue
        view = packet.wire_view()
        assert "identity" not in view
        assert "node-" not in str(view)


def test_agfw_perimeter_packets_acknowledge():
    """NL-ACK reliability covers perimeter hops like greedy hops."""
    net = build_static_net(
        VOID_TOPOLOGY, protocol="agfw",
        agfw_config=AgfwConfig(enable_perimeter=True),
    )
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-6", 64))
    net.sim.run(until=9.0)
    assert sum(n.router.acks.acks_matched for n in net.nodes) >= len(VOID_TOPOLOGY) - 2


def test_agfw_perimeter_header_overhead():
    from repro.core.agfw import AgfwData
    from repro.core.trapdoor import TrapdoorFactory, TrapdoorContents

    trapdoor, _ = TrapdoorFactory("modeled").seal(
        "x", None, TrapdoorContents("s", Position(0, 0), 0.0)
    )
    greedy = AgfwData(dest_location=Position(0, 0), trapdoor=trapdoor)
    perimeter = greedy.clone_for_forwarding(mode="perimeter")
    assert perimeter.header_bytes() == greedy.header_bytes() + 24  # 3 locations


def test_agfw_perimeter_ttl_bounds_face_walks():
    """A disconnected void (destination unreachable) must terminate via TTL
    instead of looping forever."""
    positions = VOID_TOPOLOGY[:-1] + [Position(1500, 0)]  # dest unreachable
    net = build_static_net(
        positions, protocol="agfw",
        agfw_config=AgfwConfig(enable_perimeter=True, data_ttl=16),
    )
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-6", 64))
    net.sim.run(until=12.0)
    assert net.deliveries() == []
    forwards = net.tracer.count("route.forward")
    assert forwards <= 16 * 4  # bounded by TTL (+ NL-ACK reroutes)


# ------------------------------------------------------------- piggybacking
def test_piggybacked_acks_end_to_end():
    """With piggybacking on, forwarders attach pending ACK refs to their own
    outgoing data instead of (always) sending standalone ACK packets."""
    net = build_static_net(
        line_positions(4), protocol="agfw",
        agfw_config=AgfwConfig(piggyback_acks=True),
    )
    # Two packets close together so hop-1's ACK for packet A can ride on
    # its forward of packet B.
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.schedule(3.0005, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=9.0)
    assert len(net.deliveries()) == 2
    piggybacked = sum(n.router.acks.acks_piggybacked for n in net.nodes)
    matched = sum(n.router.acks.acks_matched for n in net.nodes)
    assert piggybacked > 0
    assert matched >= 6  # all hops of both packets confirmed one way or another


def test_piggyback_does_not_lose_acks_when_idle():
    """With no outgoing data to ride on, buffered refs still flush as a
    standalone ACK — reliability must not depend on traffic."""
    net = build_static_net(
        line_positions(3), protocol="agfw",
        agfw_config=AgfwConfig(piggyback_acks=True),
    )
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-2", 64))
    net.sim.run(until=9.0)
    assert len(net.deliveries()) == 1
    retransmissions = sum(n.router.acks.retransmissions for n in net.nodes)
    assert retransmissions == 0  # every hop was acknowledged in time
