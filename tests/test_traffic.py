"""Tests for traffic sources, workloads, and the oracle location service."""

from __future__ import annotations

import random

import pytest

from repro.geo.vec import Position
from repro.location.service import OracleLocationService
from repro.traffic.cbr import CbrFlow, CbrSource
from repro.traffic.workload import make_flows, make_paper_flows
from tests.conftest import build_static_net, line_positions


# -------------------------------------------------------------------- flows
def test_flow_validation():
    with pytest.raises(ValueError):
        CbrFlow(0, "d", rate_pps=0)
    with pytest.raises(ValueError):
        CbrFlow(0, "d", payload_bytes=0)
    with pytest.raises(ValueError):
        CbrFlow(0, "d", start_time=5.0, stop_time=1.0)


def test_cbr_source_rate():
    net = build_static_net(line_positions(2), protocol="gpsr")
    flow = CbrFlow(0, "node-1", rate_pps=4.0, start_time=1.0, stop_time=6.0)
    source = CbrSource(net.sim, net.nodes[0], flow)
    source.start()
    net.sim.run(until=10.0)
    # ~4 pps over 5 s window (jittered start): 18..21 packets.
    assert 17 <= source.packets_sent <= 21


def test_cbr_stops_at_stop_time():
    net = build_static_net(line_positions(2), protocol="gpsr")
    flow = CbrFlow(0, "node-1", rate_pps=10.0, start_time=1.0, stop_time=2.0)
    source = CbrSource(net.sim, net.nodes[0], flow)
    source.start()
    net.sim.run(until=10.0)
    sent_after = source.packets_sent
    assert sent_after <= 11


def test_cbr_source_node_mismatch():
    net = build_static_net(line_positions(2), protocol="gpsr")
    flow = CbrFlow(1, "node-0")
    with pytest.raises(ValueError):
        CbrSource(net.sim, net.nodes[0], flow)


def test_cbr_packets_actually_delivered():
    net = build_static_net(line_positions(3), protocol="gpsr")
    flow = CbrFlow(0, "node-2", rate_pps=2.0, start_time=2.0, stop_time=5.0)
    source = CbrSource(net.sim, net.nodes[0], flow)
    source.start()
    net.sim.run(until=8.0)
    assert len(net.deliveries()) == source.packets_sent


# ----------------------------------------------------------------- workload
def test_paper_flow_counts():
    rng = random.Random(0)
    ids = list(range(50))
    identities = [f"node-{i}" for i in ids]
    flows = make_paper_flows(ids, identities, rng)
    assert len(flows) == 30
    assert len({f.src_node_id for f in flows}) == 20
    assert all(f.rate_pps == 4.0 and f.payload_bytes == 64 for f in flows)


def test_no_self_flows():
    rng = random.Random(1)
    ids = list(range(10))
    identities = [f"node-{i}" for i in ids]
    flows = make_flows(ids, identities, num_flows=40, num_senders=5, rng=rng)
    for flow in flows:
        assert flow.dest_identity != f"node-{flow.src_node_id}"


def test_start_window_respected():
    rng = random.Random(2)
    ids = list(range(10))
    identities = [f"node-{i}" for i in ids]
    flows = make_flows(ids, identities, 20, 5, rng, start_window=(3.0, 7.0))
    assert all(3.0 <= f.start_time <= 7.0 for f in flows)


def test_workload_validation():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        make_flows([0, 1], ["a", "b"], 5, 3, rng)  # more senders than nodes
    with pytest.raises(ValueError):
        make_flows([0], ["a"], 1, 1, rng)  # one node: no possible dest
    with pytest.raises(ValueError):
        make_flows([0, 1], ["a", "b"], 0, 1, rng)


def test_workload_deterministic():
    ids = list(range(20))
    identities = [f"node-{i}" for i in ids]
    a = make_flows(ids, identities, 10, 5, random.Random(7))
    b = make_flows(ids, identities, 10, 5, random.Random(7))
    assert a == b


def test_workload_locality_draws_near_destinations():
    ids = list(range(20))
    identities = [f"node-{i}" for i in ids]
    positions = [(100.0 * i, 0.0) for i in ids]
    flows = make_flows(
        ids, identities, 30, 10, random.Random(3),
        positions=positions, locality=250.0,
    )
    index = {f"node-{i}": i for i in ids}
    assert len(flows) == 30
    for flow in flows:
        dst = index[flow.dest_identity]
        assert dst != flow.src_node_id
        assert abs(positions[dst][0] - positions[flow.src_node_id][0]) <= 250.0


def test_workload_locality_fallback_keeps_flow_count():
    """A sender with no neighbour in range still gets a (distant) flow."""
    ids = list(range(6))
    identities = [f"node-{i}" for i in ids]
    positions = [(10_000.0 * i, 0.0) for i in ids]  # spacing >> locality
    flows = make_flows(
        ids, identities, 12, 6, random.Random(4),
        positions=positions, locality=500.0,
    )
    assert len(flows) == 12
    for flow in flows:
        assert flow.dest_identity != f"node-{flow.src_node_id}"


def test_workload_locality_requires_positions():
    ids = list(range(10))
    identities = [f"node-{i}" for i in ids]
    with pytest.raises(ValueError):
        make_flows(ids, identities, 5, 5, random.Random(0), locality=100.0)
    with pytest.raises(ValueError):
        make_flows(
            ids, identities, 5, 5, random.Random(0),
            positions=[(0.0, 0.0)], locality=100.0,  # wrong length
        )


# ------------------------------------------------------------------- oracle
def test_oracle_lookup_exact():
    net = build_static_net(line_positions(3), protocol="gpsr")
    results = []
    net.oracle.lookup(net.nodes[0], "node-2", results.append)
    assert results == [Position(400, 0)]


def test_oracle_unknown_identity():
    net = build_static_net(line_positions(2), protocol="gpsr")
    results = []
    net.oracle.lookup(net.nodes[0], "nobody", results.append)
    assert results == [None]


def test_oracle_staleness():
    from repro.sim.engine import Simulator
    from repro.net.medium import RadioMedium
    from repro.net.mobility import RandomWaypointMobility
    from repro.net.node import Node
    from repro.geo.region import Region
    from repro.sim.rng import RngRegistry

    sim = Simulator()
    medium = RadioMedium(sim)
    region = Region.of_size(1000, 1000)
    rngs = RngRegistry(1)
    mobility = RandomWaypointMobility(sim, region, random.Random(1), pause_time=0.0)
    node = Node(sim, 0, medium, mobility, rngs)
    oracle = OracleLocationService(sim, staleness=10.0)
    oracle.register(node)
    sim.run(until=60.0)
    fresh, stale = [], []
    OracleLocationService(sim).register(node)
    oracle.lookup(node, "node-0", stale.append)
    assert stale[0] == mobility.position_at(50.0)  # 10 s behind


def test_oracle_rejects_negative_staleness():
    from repro.sim.engine import Simulator

    with pytest.raises(ValueError):
        OracleLocationService(Simulator(), staleness=-1.0)
