"""The crypto fast path: memo mechanics, outcome invariance, bench floor.

Three layers of assurance for ``repro.crypto.cache``:

1. **Mechanics** — ``LruMemo`` hit/miss/eviction behaviour is exact and
   deterministic, including under a tiny ``maxsize`` where eviction is
   constantly exercised.
2. **Outcome invariance** — the wired call sites (CA verify, ring
   verify, trapdoor open) return identical results cached or not, and a
   full real-crypto scenario produces *byte-identical traces* under
   ``on``/``off``/``cross`` for multiple seeds.  ``cross`` additionally
   proves every individual memoized value against recomputation.
3. **The committed benchmark artifact** — ``BENCH_crypto.json`` must
   record the acceptance-criterion speedups (the CI bench job regenerates
   and gates; this suite floors the committed numbers).
"""

from __future__ import annotations

import json
import pathlib
import random

import pytest

from repro.core.aant import AantAuthenticator
from repro.core.config import AantConfig
from repro.core.trapdoor import TrapdoorContents, TrapdoorFactory
from repro.crypto.cache import (
    CACHE_MODES,
    CERT_VERIFY,
    RING_VERIFY,
    TRAPDOOR_OPEN,
    CacheCoherenceError,
    LruMemo,
    cache_counters,
    memo,
    reset_caches,
    validate_cache_mode,
)
from repro.crypto.rsa import generate_keypair
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.geo.vec import Position
from repro.metrics import (
    crypto_cache_counters,
    crypto_cache_hit_rates,
    format_crypto_cache_report,
)


# ---------------------------------------------------------------- mechanics
def test_lru_memo_hit_miss_counters():
    cache = LruMemo("t", maxsize=8)
    calls = []

    def compute():
        calls.append(1)
        return 42

    assert cache.get_or_compute("k", compute) == 42
    assert cache.get_or_compute("k", compute) == 42
    assert len(calls) == 1  # second lookup memoized
    assert cache.stats.misses == 1 and cache.stats.hits == 1
    assert "k" in cache and len(cache) == 1


def test_lru_memo_eviction_under_tiny_maxsize():
    """A maxsize-2 cache stays *correct* while constantly evicting: every
    value still equals recomputation, only the hit rate suffers."""
    cache = LruMemo("tiny", maxsize=2)
    for round_ in range(3):
        for key in range(5):
            value = cache.get_or_compute(key, lambda k=key: k * 10)
            assert value == key * 10
    assert len(cache) == 2
    assert cache.stats.evictions > 0
    # 5 distinct keys cycling through a 2-slot cache: every access after
    # the first round is still a miss (the LRU tail is always the next key).
    assert cache.stats.misses == 15 and cache.stats.hits == 0


def test_lru_memo_recency_order_not_hash_order():
    cache = LruMemo("lru", maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get_or_compute("a", lambda: 1)  # refresh "a" -> "b" becomes LRU
    cache.put("c", 3)  # evicts "b", not "a"
    assert "a" in cache and "c" in cache and "b" not in cache


def test_lru_memo_put_refresh_does_not_evict():
    cache = LruMemo("r", maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # refresh in place
    assert len(cache) == 2 and cache.stats.evictions == 0


def test_lru_memo_rejects_bad_maxsize():
    with pytest.raises(ValueError):
        LruMemo("bad", maxsize=0)


def test_off_mode_never_touches_store():
    cache = LruMemo("off", maxsize=8)
    calls = []
    for _ in range(3):
        cache.get_or_compute("k", lambda: calls.append(1) or 7, mode="off")
    assert len(calls) == 3 and len(cache) == 0
    assert cache.stats.hits == 0 and cache.stats.misses == 0


def test_cross_mode_agrees_and_counts():
    cache = LruMemo("x", maxsize=8)
    assert cache.get_or_compute("k", lambda: 5, mode="cross") == 5  # miss
    assert cache.get_or_compute("k", lambda: 5, mode="cross") == 5  # checked hit
    assert cache.stats.cross_checks == 1


def test_cross_mode_detects_poisoned_entry():
    cache = LruMemo("poison", maxsize=8)
    cache.put("k", "stale")
    with pytest.raises(CacheCoherenceError):
        cache.get_or_compute("k", lambda: "fresh", mode="cross")


def test_mode_validation():
    for mode in CACHE_MODES:
        assert validate_cache_mode(mode) == mode
    with pytest.raises(ValueError):
        validate_cache_mode("sometimes")
    with pytest.raises(ValueError):
        LruMemo("m").get_or_compute("k", lambda: 1, mode="sometimes")


def test_registry_shares_instances_and_resets():
    reset_caches()
    a = memo("shared")
    b = memo("shared")
    assert a is b
    a.put("k", 1)
    reset_caches()
    assert "k" not in memo("shared")


# ------------------------------------------------------------------ metrics
def test_metrics_surface_cache_counters():
    reset_caches()
    cache = memo("metrics_demo")
    cache.get_or_compute("k", lambda: 1)
    cache.get_or_compute("k", lambda: 1)
    counters = crypto_cache_counters()
    assert counters == cache_counters()
    assert counters["metrics_demo"]["hits"] == 1
    assert counters["metrics_demo"]["misses"] == 1
    assert counters["metrics_demo"]["size"] == 1
    assert crypto_cache_hit_rates()["metrics_demo"] == pytest.approx(0.5)
    report = format_crypto_cache_report()
    assert "metrics_demo" in report and "50.0%" in report
    reset_caches()


# ------------------------------------------------------- wired call sites
def test_ca_verify_caches_signature_but_not_revocation(ca_with_nodes):
    """Only the pure signature check is memoized; revocation is consulted
    fresh on every call, so revoking a cert invalidates it immediately
    even with a warm cache."""
    ca, stores = ca_with_nodes
    cert = stores[0].certificate
    reset_caches()
    assert ca.verify(cert)
    assert cache_counters()[CERT_VERIFY]["misses"] == 1
    assert ca.verify(cert)
    assert cache_counters()[CERT_VERIFY]["hits"] == 1
    ca.revoke(cert.serial)
    try:
        assert not ca.verify(cert)  # warm cache cannot resurrect it
    finally:
        ca._revoked.discard(cert.serial)  # leave shared fixture clean
    assert ca.verify(cert)
    reset_caches()


def test_ring_verify_cached_across_receivers(ca_with_nodes):
    """One signed hello heard by several receivers costs one real ring
    verification; the rest are memo hits with identical verdicts."""
    ca, stores = ca_with_nodes
    signer = AantAuthenticator(
        AantConfig(ring_size=3), mode="real",
        keystore=stores[0], ca=ca, rng=random.Random(0),
    )
    args = (b"\x05" * 6, Position(3.0, 4.0), 2.0)
    attachment, _ = signer.sign_hello(*args)
    reset_caches()
    for index in range(1, 4):
        verifier = AantAuthenticator(
            AantConfig(ring_size=3), mode="real", keystore=stores[index], ca=ca
        )
        valid, delay = verifier.verify_hello(attachment, *args)
        assert valid
        assert delay == pytest.approx(
            verifier.cost.ring_verify_cost(attachment.ring_size)
        )  # hits charge the same virtual time as the miss
    counters = cache_counters()[RING_VERIFY]
    assert counters["misses"] == 1 and counters["hits"] == 2
    reset_caches()


def test_trapdoor_negative_open_is_memoized():
    """The expensive common case: a non-destination node failing to open a
    trapdoor.  The None result memoizes like any other."""
    rng = random.Random(11)
    dest_key = generate_keypair(512, rng)
    other_key = generate_keypair(512, rng)
    factory = TrapdoorFactory("real", rng=rng)
    contents = TrapdoorContents("src", Position(1, 2), 0.5)
    trapdoor, _ = factory.seal("dest", dest_key.public(), contents)
    reset_caches()
    for _ in range(3):
        opened, delay = factory.try_open(trapdoor, "other", other_key)
        assert opened is None
        assert delay > 0  # the cost model charge survives the memo hit
    counters = cache_counters()[TRAPDOOR_OPEN]
    assert counters["misses"] == 1 and counters["hits"] == 2
    # ... and the true destination still opens it.
    opened, _ = factory.try_open(trapdoor, "dest", dest_key)
    assert opened is not None and opened.src_identity == contents.src_identity
    reset_caches()


# --------------------------------------------------- end-to-end invariance
def _real_scenario(seed: int, cache_mode: str) -> ScenarioConfig:
    return ScenarioConfig(
        protocol="agfw",
        num_nodes=12,
        sim_time=4.0,
        traffic_start=(0.5, 1.5),
        num_flows=4,
        num_senders=4,
        seed=seed,
        real_crypto=True,
        aant_ring_size=2,
        keep_trace=True,
        crypto_cache_mode=cache_mode,
    )


def _trace_fingerprint(seed: int, cache_mode: str) -> list:
    """Run a full real-crypto scenario and reduce its trace to the fields
    stable across in-process runs.

    Packet/frame uids come from module-level counters (audited DET-006
    exemptions) and keep incrementing across runs in one process, so the
    fingerprint is ``(time, category, node)`` per record — which still
    captures every event, its virtual timestamp, and its emitter.
    """
    reset_caches()
    scenario = Scenario(_real_scenario(seed, cache_mode))
    result = scenario.run()
    records = [(repr(r.time), r.category, r.node) for r in scenario.tracer.records]
    assert records, "keep_trace scenario must retain records"
    return [(result.sent, result.delivered)] + records


@pytest.mark.parametrize("seed", [3, 17])
def test_cache_modes_byte_identical_traces(seed):
    """The acceptance criterion: an end-to-end AANT + trapdoor run under
    real crypto emits byte-identical traces with caches on, off, and in
    cross-check mode — and cross mode's per-value equivalence assertions
    all hold (any mismatch raises CacheCoherenceError)."""
    off = _trace_fingerprint(seed, "off")
    on = _trace_fingerprint(seed, "on")
    cross = _trace_fingerprint(seed, "cross")
    assert on == off
    assert cross == off
    reset_caches()


def test_scenario_on_mode_actually_hits():
    """Guard against the fast path silently disconnecting: a real-crypto
    run with caches on must register hits on the wired call sites."""
    reset_caches()
    Scenario(_real_scenario(seed=3, cache_mode="on")).run()
    counters = cache_counters()
    assert counters[CERT_VERIFY]["hits"] > 0
    assert counters[RING_VERIFY]["hits"] > 0
    reset_caches()


def test_scenario_rejects_bad_cache_mode():
    with pytest.raises(ValueError):
        _real_scenario(seed=1, cache_mode="warp")


# ------------------------------------------------------ committed baseline
def test_committed_crypto_baseline_meets_speedup_floors():
    """The acceptance criterion lives in the committed artifact: the
    recorded cached-vs-uncached speedup for the repeated hello-verify
    workload (ring size 5, 10 receivers) must be >= 3x."""
    path = pathlib.Path(__file__).parent.parent / "benchmarks" / "BENCH_crypto.json"
    document = json.loads(path.read_text(encoding="utf-8"))
    assert document["schema_version"] == 1
    assert document["suite"] == "crypto"
    assert document["derived"]["hello_verify_cached_speedup"] >= 3.0
    assert document["derived"]["trapdoor_open_cached_speedup"] >= 3.0
    assert document["derived"]["crt_precompute_speedup"] >= 1.0
