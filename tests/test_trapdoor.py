"""Tests for trapdoor sealing/opening in both crypto modes."""

from __future__ import annotations

import random

import pytest

from repro.core.trapdoor import Trapdoor, TrapdoorContents, TrapdoorFactory
from repro.crypto.timing import DEFAULT_COST_MODEL
from repro.geo.vec import Position


@pytest.fixture
def contents():
    return TrapdoorContents("node-0", Position(12.5, 34.0), 5.0)


# ------------------------------------------------------------- modeled mode
def test_modeled_seal_open_roundtrip(contents):
    factory = TrapdoorFactory("modeled")
    trapdoor, seal_delay = factory.seal("node-9", None, contents)
    assert seal_delay == pytest.approx(DEFAULT_COST_MODEL.pk_encrypt_s)
    opened, open_delay = factory.try_open(trapdoor, "node-9", None)
    assert opened == contents
    assert open_delay == pytest.approx(DEFAULT_COST_MODEL.pk_decrypt_s)


def test_modeled_wrong_identity_fails_but_charges(contents):
    factory = TrapdoorFactory("modeled")
    trapdoor, _ = factory.seal("node-9", None, contents)
    opened, delay = factory.try_open(trapdoor, "node-3", None)
    assert opened is None
    assert delay == pytest.approx(DEFAULT_COST_MODEL.pk_decrypt_s)


def test_modeled_size_is_paper_bound(contents):
    factory = TrapdoorFactory("modeled")
    trapdoor, _ = factory.seal("node-9", None, contents)
    assert trapdoor.size_bytes == 64


def test_wire_view_is_opaque(contents):
    """The sniffer must not see anything but a size."""
    factory = TrapdoorFactory("modeled")
    trapdoor, _ = factory.seal("node-9", None, contents)
    assert trapdoor.wire_view() == {"opaque_bytes": 64}


def test_ref_bytes_unique_per_trapdoor(contents):
    factory = TrapdoorFactory("modeled")
    a, _ = factory.seal("node-9", None, contents)
    b, _ = factory.seal("node-9", None, contents)
    assert a.ref_bytes() != b.ref_bytes()
    assert len(a.ref_bytes()) == 8


def test_ref_bytes_deterministic_across_factories(contents):
    """Regression: refs used to be ``id(self)`` — memory addresses, which
    the allocator recycles and which vary with process history.  A ref
    must be a pure function of the seal sequence and contents, so two
    factories replaying the same seals mint identical refs."""
    first = TrapdoorFactory("modeled")
    second = TrapdoorFactory("modeled")
    refs_first = [first.seal("node-9", None, contents)[0].ref_bytes() for _ in range(5)]
    refs_second = [second.seal("node-9", None, contents)[0].ref_bytes() for _ in range(5)]
    assert refs_first == refs_second  # replayable, not address-dependent
    assert len(set(refs_first)) == 5  # and still unique per sealed packet


def test_handbuilt_fallback_ref_is_content_derived(contents):
    """Regression (DET-010): the hand-built fallback used to hash
    ``id(self)`` — an interpreter heap address that differs between runs
    and processes.  Two hand-built trapdoors with identical fields must
    mint identical refs (the fallback is a pure function of the sealed
    fields), and different fields must mint different refs."""
    a = Trapdoor(size_bytes=64, _sealed_for="node-9", _contents=contents)
    b = Trapdoor(size_bytes=64, _sealed_for="node-9", _contents=contents)
    assert a.ref_bytes() == b.ref_bytes()
    assert len(a.ref_bytes()) == 8
    other = Trapdoor(size_bytes=64, _sealed_for="node-3", _contents=contents)
    assert other.ref_bytes() != a.ref_bytes()


def test_ref_bytes_survive_garbage_collection(contents):
    """Regression: an ``id``-based ref could collide with a *live* pending
    ref once the original trapdoor was freed and its address reused.
    Sealed refs must stay unique across any interleaving of seals and
    drops."""
    import gc

    factory = TrapdoorFactory("modeled")
    seen = set()
    for _ in range(200):
        trapdoor, _ = factory.seal("node-9", None, contents)
        ref = trapdoor.ref_bytes()
        assert ref not in seen
        seen.add(ref)
        del trapdoor  # make the address available for reuse
        gc.collect()


# ---------------------------------------------------------------- real mode
def test_real_seal_open_roundtrip(rsa_keys, contents, rng):
    factory = TrapdoorFactory("real", rng=rng)
    dest = rsa_keys[0]
    trapdoor, _ = factory.seal("node-9", dest.public(), contents)
    assert trapdoor.ciphertext is not None
    assert trapdoor.size_bytes == 64  # one RSA-512 block
    opened, _ = factory.try_open(trapdoor, "node-9", dest)
    assert opened is not None
    assert opened.src_identity == contents.src_identity
    assert opened.src_location.x == pytest.approx(contents.src_location.x, abs=1e-3)
    assert opened.timestamp == pytest.approx(contents.timestamp)


def test_real_wrong_key_fails(rsa_keys, contents, rng):
    factory = TrapdoorFactory("real", rng=rng)
    trapdoor, _ = factory.seal("node-9", rsa_keys[0].public(), contents)
    opened, _ = factory.try_open(trapdoor, "node-9", rsa_keys[1])
    assert opened is None


def test_real_no_private_key_fails(rsa_keys, contents, rng):
    factory = TrapdoorFactory("real", rng=rng)
    trapdoor, _ = factory.seal("node-9", rsa_keys[0].public(), contents)
    opened, delay = factory.try_open(trapdoor, "node-9", None)
    assert opened is None
    assert delay > 0


def test_real_requires_public_key(contents):
    factory = TrapdoorFactory("real")
    with pytest.raises(ValueError):
        factory.seal("node-9", None, contents)


def test_real_identity_too_long_rejected(rsa_keys, rng):
    factory = TrapdoorFactory("real", rng=rng)
    long_contents = TrapdoorContents("x" * 30, Position(0, 0), 0.0)
    with pytest.raises(ValueError):
        factory.seal("node-9", rsa_keys[0].public(), long_contents)


def test_real_ref_is_ciphertext_hash(rsa_keys, contents, rng):
    factory = TrapdoorFactory("real", rng=rng)
    trapdoor, _ = factory.seal("node-9", rsa_keys[0].public(), contents)
    from repro.crypto.hashing import sha256

    assert trapdoor.ref_bytes() == sha256(trapdoor.ciphertext)[:8]


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        TrapdoorFactory("quantum")


def test_unpack_rejects_garbage():
    assert TrapdoorFactory._unpack(b"not-a-trapdoor") is None
    assert TrapdoorFactory._unpack(b"DST!") is None  # truncated
