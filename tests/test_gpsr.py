"""Tests for the GPSR baseline router (greedy + perimeter recovery)."""

from __future__ import annotations

import pytest

from repro.geo.vec import Position
from repro.routing.gpsr import GpsrBeacon, GpsrConfig, GpsrData, GpsrRouter
from tests.conftest import build_static_net, line_positions


def test_beacons_populate_neighbor_tables():
    net = build_static_net(line_positions(3), protocol="gpsr")
    net.sim.run(until=3.0)
    middle = net.nodes[1].router
    assert "node-0" in middle.table
    assert "node-2" in middle.table
    assert "node-0" not in net.nodes[2].router.table  # 400 m apart


def test_beacon_carries_identity_and_location():
    """The privacy leak the paper attacks, asserted explicitly."""
    beacon = GpsrBeacon(sender_identity="node-1", position=Position(3, 4), timestamp=1.0)
    view = beacon.wire_view()
    assert view["identity"] == "node-1"
    assert view["location"] == (3, 4)


def test_end_to_end_delivery_on_line():
    net = build_static_net(line_positions(5), protocol="gpsr")
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-4", 64))
    net.sim.run(until=6.0)
    deliveries = net.deliveries()
    assert len(deliveries) == 1
    assert deliveries[0][0] == 4


def test_multihop_latency_reasonable():
    net = build_static_net(line_positions(5), protocol="gpsr")
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-4", 64))
    net.sim.run(until=6.0)
    (_, _, recv_time), = net.deliveries()
    (_, _, send_time), = net.sends()
    assert 0 < recv_time - send_time < 0.5


def test_delivery_to_direct_neighbor():
    net = build_static_net(line_positions(2), protocol="gpsr")
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-1", 64))
    net.sim.run(until=5.0)
    assert len(net.deliveries()) == 1


def test_loopback_delivers_immediately():
    net = build_static_net(line_positions(2), protocol="gpsr")
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-0", 64))
    net.sim.run(until=4.0)
    assert net.deliveries()[0][0] == 0


def test_greedy_deadend_drops_without_perimeter():
    # 0 -- 1    gap    2(dest): node 1 has no neighbor closer to 2.
    positions = [Position(0, 0), Position(200, 0), Position(900, 0)]
    net = build_static_net(positions, protocol="gpsr")
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-2", 64))
    net.sim.run(until=6.0)
    assert net.deliveries() == []
    drops = [r for r in net.tracer.filter("route.drop") if r.data["reason"] == "deadend"]
    assert drops


def test_unknown_destination_counts_no_location():
    net = build_static_net(line_positions(2), protocol="gpsr")
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("ghost", 64))
    net.sim.run(until=4.0)
    assert net.nodes[0].router.stats.drops_no_location == 1


def test_ttl_exhaustion_drops():
    config = GpsrConfig(data_ttl=2)
    net = build_static_net(line_positions(6), protocol="gpsr", gpsr_config=config)
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-5", 64))
    net.sim.run(until=6.0)
    assert net.deliveries() == []
    assert any(r.data["reason"] == "ttl" for r in net.tracer.filter("route.drop"))


def test_mac_failure_triggers_neighbor_eviction_and_reroute():
    """Feed node 1 a phantom neighbor: MAC failure must evict it and the
    packet still arrives through the real path."""
    net = build_static_net(line_positions(4), protocol="gpsr")
    net.sim.run(until=3.0)  # warm tables
    from repro.net.addresses import mac_for_node

    router = net.nodes[1].router
    router.table.update("phantom", mac_for_node(99), Position(390, 0), net.sim.now)
    net.sim.schedule(0.1, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=8.0)
    assert len(net.deliveries()) == 1
    assert "phantom" not in router.table


def test_duplicate_suppression():
    net = build_static_net(line_positions(3), protocol="gpsr")
    net.sim.run(until=3.0)
    router = net.nodes[2].router
    packet = GpsrData(
        payload_bytes=10,
        src_identity="node-0",
        dest_identity="node-2",
        dest_location=Position(400, 0),
        ttl=10,
    )
    router._handle_data(packet)
    router._handle_data(packet)
    assert router.stats.delivered == 1
    assert router.stats.duplicates == 1


VOID_TOPOLOGY = [
    Position(0, 0),      # 0 source
    Position(250, 0),    # 1 local maximum: all its neighbors are farther
    Position(100, 150),  # 2 detour (up and around the void)
    Position(200, 350),  # 3
    Position(400, 400),  # 4
    Position(560, 220),  # 5 re-enters greedy territory
    Position(600, 0),    # 6 destination (350 m from node 1: out of reach)
]


def test_void_topology_is_a_real_local_maximum():
    dest = VOID_TOPOLOGY[6]
    node1 = VOID_TOPOLOGY[1]
    neighbors_of_1 = [
        p for p in VOID_TOPOLOGY if p != node1 and p.distance_to(node1) <= 250
    ]
    assert neighbors_of_1  # connected
    assert all(p.distance_to(dest) > node1.distance_to(dest) for p in neighbors_of_1)


def test_perimeter_recovers_around_void():
    """Greedy fails at node 1; the right-hand rule must route the packet up
    and around the void to the destination."""
    config = GpsrConfig(enable_perimeter=True)
    net = build_static_net(VOID_TOPOLOGY, protocol="gpsr", gpsr_config=config)
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-6", 64))
    net.sim.run(until=8.0)
    assert len(net.deliveries()) == 1
    assert net.deliveries()[0][0] == 6
    modes = [r.data["mode"] for r in net.tracer.filter("route.forward")]
    assert "perimeter" in modes
    assert "greedy" in modes


def test_perimeter_disabled_same_topology_drops():
    net = build_static_net(VOID_TOPOLOGY, protocol="gpsr", gpsr_config=GpsrConfig())
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-6", 64))
    net.sim.run(until=8.0)
    assert net.deliveries() == []


def test_beacon_interval_jittered():
    net = build_static_net(line_positions(2), protocol="gpsr")
    net.sim.run(until=10.0)
    beacons = [r.time for r in net.tracer.filter("phy.tx") if r.data["packet_kind"] == "gpsr.beacon" and r.node == 0]
    gaps = {round(b - a, 3) for a, b in zip(beacons, beacons[1:])}
    assert len(gaps) > 1  # not metronomic


def test_router_stats_forwarded_counts():
    net = build_static_net(line_positions(4), protocol="gpsr")
    net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=6.0)
    total_forwarded = sum(n.router.stats.forwarded for n in net.nodes)
    assert total_forwarded == 3  # three hops
