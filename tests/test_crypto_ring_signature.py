"""Tests for RST ring signatures — the AANT's anonymity mechanism."""

from __future__ import annotations

import random

import pytest

from repro.crypto.ring_signature import (
    RingSignature,
    ring_domain_width,
    ring_sign,
    ring_verify,
)


@pytest.fixture(scope="module")
def ring(rsa_keys):
    return [key.public() for key in rsa_keys[:5]]


def test_sign_verify_every_position(rsa_keys, ring, rng):
    """Any ring member can produce a signature that verifies identically —
    the signer-ambiguity the (k+1)-anonymity claim rests on."""
    for index in range(len(ring)):
        signature = ring_sign(b"hello", ring, index, rsa_keys[index], rng)
        assert ring_verify(b"hello", ring, signature)


def test_ring_of_one_degenerates_to_plain_signature(rsa_keys, rng):
    ring = [rsa_keys[0].public()]
    signature = ring_sign(b"solo", ring, 0, rsa_keys[0], rng)
    assert ring_verify(b"solo", ring, signature)


def test_tampered_message_rejected(rsa_keys, ring, rng):
    signature = ring_sign(b"hello", ring, 2, rsa_keys[2], rng)
    assert not ring_verify(b"hellO", ring, signature)


def test_tampered_x_rejected(rsa_keys, ring, rng):
    signature = ring_sign(b"hello", ring, 1, rsa_keys[1], rng)
    xs = list(signature.xs)
    xs[3] ^= 1
    forged = RingSignature(glue=signature.glue, xs=tuple(xs), width=signature.width)
    assert not ring_verify(b"hello", ring, forged)


def test_tampered_glue_rejected(rsa_keys, ring, rng):
    signature = ring_sign(b"hello", ring, 1, rsa_keys[1], rng)
    forged = RingSignature(glue=signature.glue ^ 1, xs=signature.xs, width=signature.width)
    assert not ring_verify(b"hello", ring, forged)


def test_reordered_ring_rejected(rsa_keys, ring, rng):
    signature = ring_sign(b"hello", ring, 0, rsa_keys[0], rng)
    shuffled = list(ring)
    shuffled.reverse()
    assert not ring_verify(b"hello", shuffled, signature)


def test_wrong_ring_size_rejected(rsa_keys, ring, rng):
    signature = ring_sign(b"hello", ring, 0, rsa_keys[0], rng)
    assert not ring_verify(b"hello", ring[:-1], signature)


def test_outsider_cannot_sign_without_private_key(rsa_keys, ring, rng):
    """A forger (the paper's spoofing attacker) holding only public keys
    must place its own key in the ring for signing to work."""
    outsider = rsa_keys[6]  # not in `ring`
    with pytest.raises(ValueError):
        ring_sign(b"forged", ring, 0, outsider, rng)


def test_signer_index_bounds(rsa_keys, ring, rng):
    with pytest.raises(ValueError):
        ring_sign(b"m", ring, 5, rsa_keys[0], rng)
    with pytest.raises(ValueError):
        ring_sign(b"m", [], 0, rsa_keys[0], rng)


def test_serialization_roundtrip(rsa_keys, ring, rng):
    signature = ring_sign(b"hello", ring, 3, rsa_keys[3], rng)
    restored = RingSignature.from_bytes(signature.to_bytes())
    assert restored == signature
    assert ring_verify(b"hello", ring, restored)


def test_byte_size_formula(rsa_keys, ring, rng):
    signature = ring_sign(b"hello", ring, 0, rsa_keys[0], rng)
    assert signature.byte_size() == signature.width * (len(ring) + 1)


def test_domain_width_covers_largest_key(ring):
    width = ring_domain_width(ring)
    assert width % 2 == 0
    assert width * 8 >= max(k.bits for k in ring) + 160


def test_signatures_are_randomized(rsa_keys, ring, rng):
    a = ring_sign(b"hello", ring, 0, rsa_keys[0], rng)
    b = ring_sign(b"hello", ring, 0, rsa_keys[0], rng)
    assert a.glue != b.glue


def test_signature_structure_hides_signer_position(rsa_keys, ring, rng):
    """No per-slot structural difference betrays the signer: every x_i is a
    full-width domain element regardless of who signed."""
    for signer in (0, 4):
        signature = ring_sign(b"hello", ring, signer, rsa_keys[signer], rng)
        assert len(signature.xs) == len(ring)
        assert all(0 <= x < 2 ** (8 * signature.width) for x in signature.xs)


def test_verify_never_raises_on_garbage(ring):
    garbage = RingSignature(glue=1, xs=(1, 2, 3), width=4)
    assert not ring_verify(b"m", ring, garbage)
    huge = RingSignature(glue=2**800, xs=tuple([2**800] * 5), width=ring_domain_width(ring))
    assert not ring_verify(b"m", ring, huge)
