"""Mobility shard-handoff edge cases.

Ownership is static (home column at t=0) but spatial responsibility is
dynamic: interest intervals track where a shard's nodes actually are.
These tests drive the three ways a node can stress that split —
teleporting across partition lines inside one conservative window,
sitting exactly on a partition boundary, and churn-crashing while
straddling a border band — and prove each one byte-identical via
``shard_mode="cross"`` (the run itself raises ShardCoherenceError on
the first divergent trace record).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.faults import FaultPlan
from repro.geo.partition import ColumnPartition
from repro.sim.shard.worker import ShardWorker


def _static_cfg(seed: int, **kw):
    defaults = dict(
        protocol="gpsr",
        num_nodes=16,
        width=1200.0,
        height=300.0,
        sim_time=4.0,
        seed=seed,
        static=True,
        num_flows=8,
        num_senders=8,
        rate_pps=2.0,
        traffic_start=(0.5, 1.5),
    )
    defaults.update(kw)
    return ScenarioConfig(**defaults)


def _positions(cfg: ScenarioConfig):
    """Node positions at t=0 (the ownership assignment input)."""
    built = Scenario(replace(cfg, shard_mode="off"))
    return [n.mobility.position_at(0.0) for n in built.nodes]


# ----------------------------------------------------- boundary semantics
def test_column_of_exact_boundary_ties_break_right():
    part = ColumnPartition(0.0, 1200.0, 3)
    w = part.column_width
    assert part.column_of(0.0) == 0
    assert part.column_of(w) == 1  # exactly on the first line
    assert part.column_of(2 * w) == 2
    assert part.column_of(1200.0) == 2  # arena edge clamps
    assert part.column_of(-5.0) == 0
    lo, hi = part.column_bounds(1)
    assert lo == w and hi == 2 * w


def test_interest_interval_endpoints_inclusive():
    iv = (100.0, 200.0)
    assert ColumnPartition.in_interval(100.0, iv)
    assert ColumnPartition.in_interval(200.0, iv)
    assert not ColumnPartition.in_interval(99.999, iv)
    assert not ColumnPartition.in_interval(None and 0.0, None)


# --------------------------------------------------------------- teleports
def test_teleports_require_static():
    with pytest.raises(ValueError, match="static"):
        ScenarioConfig(teleports=((1.0, 0, 10.0, 10.0),), static=False)
    with pytest.raises(ValueError, match="unknown node"):
        ScenarioConfig(teleports=((1.0, 99, 10.0, 10.0),), static=True)
    with pytest.raises(ValueError, match=">= 0"):
        ScenarioConfig(teleports=((-1.0, 0, 10.0, 10.0),), static=True)


def test_teleport_across_two_partition_lines_byte_identical():
    """A node jumps from column 0 to column 2 (crossing both partition
    lines) in a single event — well inside one conservative window."""
    cfg = _static_cfg(5)
    positions = _positions(cfg)
    part = ColumnPartition(0.0, cfg.width, 3)
    donor = next(
        i for i, p in enumerate(positions) if part.column_of(p.x) == 0
    )
    # Land mid-column-2, mid-traffic.
    cfg = replace(
        cfg, teleports=((2.0, donor, 1000.0, 150.0),), shard_mode="cross", shards=3
    )
    result = Scenario(cfg).run()
    assert result.sent > 0


def test_teleport_onto_exact_boundary_byte_identical():
    """The node comes to rest exactly on a partition line — the
    degenerate 'pausing on a boundary' position."""
    cfg = _static_cfg(6)
    boundary = 1200.0 / 3  # first partition line
    cfg = replace(
        cfg,
        teleports=((1.5, 0, boundary, 150.0), (2.5, 1, 2 * boundary, 150.0)),
        shard_mode="cross",
        shards=3,
    )
    result = Scenario(cfg).run()
    assert result.sent > 0


def test_teleport_fork_transport_matches_single_engine():
    """Same scenario through forked worker processes (the key codec
    carries the teleport-bearing causal chains across pipes)."""
    cfg = _static_cfg(5, teleports=((2.0, 0, 1000.0, 150.0),))
    ref = Scenario(cfg).run()
    got = Scenario(replace(cfg, shard_mode="on", shards=3)).run()
    assert (got.sent, got.delivered, got.collisions, got.frames_on_air) == (
        ref.sent,
        ref.delivered,
        ref.collisions,
        ref.frames_on_air,
    )


def test_teleport_destination_widens_interval_before_jump():
    """The owner's interest interval covers a scripted destination from
    t=0 — transmissions near the landing spot mirror to the owner even
    before the jump (jumps are not bounded drift)."""
    cfg = _static_cfg(5)
    positions = _positions(cfg)
    part = ColumnPartition(0.0, cfg.width, 3)
    donor = next(
        i for i, p in enumerate(positions) if part.column_of(p.x) == 0
    )
    dest_x = 1100.0
    cfg = replace(
        cfg, teleports=((2.0, donor, dest_x, 150.0),), shard_mode="cross", shards=3
    )
    worker = ShardWorker(cfg, 0, capture_all=False)
    intervals = worker.intervals()
    lo, hi = intervals[0]
    assert lo <= dest_x <= hi  # destination already inside, pre-jump
    assert worker._teleport_nodes == frozenset({donor})


# ------------------------------------------------- churn at a border band
def test_churn_crashed_node_straddling_border_band():
    """A node inside the border band (exposed to the neighbouring
    shard's interest interval) crashes and recovers mid-run; carrier
    sense, mirrored transmissions, and fault bookkeeping at the border
    stay byte-identical."""
    # Wide arena so border bands do NOT cover whole columns: interest
    # pad is interference_range (550) + slack, columns are 1800 wide.
    cfg = _static_cfg(7, width=3600.0, num_nodes=24, num_flows=10, num_senders=10)
    positions = _positions(cfg)
    part = ColumnPartition(0.0, cfg.width, 2)
    band_lo = part.column_width - 600.0
    band_hi = part.column_width + 600.0
    straddlers = [
        i for i, p in enumerate(positions) if band_lo <= p.x <= band_hi
    ]
    assert straddlers, "seed produced no border-band nodes; pick another"
    plan = FaultPlan()
    for nid in straddlers:
        # Keep every recovery inside the run: events past sim_time
        # never execute.
        plan = plan.pause(nid, at=1.0 + 0.05 * nid, duration=0.5)
    cfg = replace(cfg, fault_plan=plan, shard_mode="cross", shards=2)
    result = Scenario(cfg).run()
    assert result.fault_counters["crashes"] == len(straddlers)
    assert result.fault_counters["recoveries"] == len(straddlers)


def test_mobile_churn_border_byte_identical():
    """Waypoint mobility + churn across every node: nodes drift through
    partition lines while crashing and recovering."""
    cfg = ScenarioConfig(
        protocol="gpsr",
        num_nodes=18,
        width=1200.0,
        height=300.0,
        sim_time=4.0,
        seed=9,
        max_speed=20.0,
        num_flows=8,
        num_senders=8,
        rate_pps=2.0,
        traffic_start=(0.5, 1.5),
        fault_plan=FaultPlan.churn(range(18), 4.0, seed=3, rate=1.0),
        shard_mode="cross",
        shards=3,
    )
    result = Scenario(cfg).run()
    assert result.sent > 0
    assert result.fault_counters["crashes"] > 0
