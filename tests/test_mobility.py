"""Tests for mobility models."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.region import Region
from repro.geo.vec import Position
from repro.net.mobility import RandomWaypointMobility, StaticMobility, WaypointLeg
from repro.sim.engine import Simulator


def test_static_never_moves():
    mobility = StaticMobility(Position(5, 5))
    assert mobility.position_at(0) == Position(5, 5)
    assert mobility.position_at(1000) == Position(5, 5)
    assert mobility.velocity_at(50) == (0.0, 0.0)


def test_static_move_to():
    mobility = StaticMobility(Position(0, 0))
    mobility.move_to(Position(9, 9))
    assert mobility.position_at(0) == Position(9, 9)


# ------------------------------------------------------------- waypoint leg
def test_leg_pauses_then_travels():
    leg = WaypointLeg(Position(0, 0), Position(100, 0), speed=10.0, depart_time=60.0)
    assert leg.position_at(0) == Position(0, 0)  # pausing
    assert leg.position_at(60) == Position(0, 0)
    assert leg.position_at(65) == Position(50, 0)  # halfway
    assert leg.position_at(70) == Position(100, 0)
    assert leg.position_at(1000) == Position(100, 0)
    assert leg.arrive_time == 70.0


def test_leg_velocity_only_while_moving():
    leg = WaypointLeg(Position(0, 0), Position(100, 0), speed=10.0, depart_time=60.0)
    assert leg.velocity_at(30) == (0.0, 0.0)
    vx, vy = leg.velocity_at(65)
    assert vx == pytest.approx(10.0)
    assert vy == pytest.approx(0.0)
    assert leg.velocity_at(75) == (0.0, 0.0)


def test_leg_zero_distance():
    leg = WaypointLeg(Position(5, 5), Position(5, 5), speed=10.0, depart_time=0.0)
    assert leg.arrive_time == 0.0
    assert leg.velocity_at(0.0) == (0.0, 0.0)


# ----------------------------------------------------------- random waypoint
def _make_rwp(seed=0, **kwargs):
    sim = Simulator()
    region = Region.of_size(1500, 300)
    mobility = RandomWaypointMobility(
        sim, region, random.Random(seed), pause_time=kwargs.pop("pause_time", 5.0), **kwargs
    )
    return sim, region, mobility


def test_rwp_stays_in_region():
    sim, region, mobility = _make_rwp(seed=3)
    sim.run(until=600)
    for t in range(0, 600, 7):
        assert region.contains(mobility.position_at(min(float(t), sim.now)))


def test_rwp_actually_moves():
    sim, _region, mobility = _make_rwp(seed=1)
    start = mobility.position_at(0)
    sim.run(until=300)
    # With a 5 s pause and >=1 m/s it must have moved by now.
    assert mobility.position_at(sim.now).distance_to(start) > 1.0


def test_rwp_speed_bounds():
    sim, _region, mobility = _make_rwp(seed=2, min_speed=1.0, max_speed=20.0)
    sim.run(until=500)
    # Sample velocities; magnitude must never exceed max_speed.
    for t in range(0, 500, 3):
        vx, vy = mobility.velocity_at(float(t))
        assert (vx * vx + vy * vy) ** 0.5 <= 20.0 + 1e-9


def test_rwp_pause_respected():
    sim, _region, mobility = _make_rwp(seed=4, pause_time=50.0)
    # During the initial pause, the node sits still.
    p0 = mobility.position_at(0.0)
    assert mobility.position_at(25.0) == p0
    assert mobility.velocity_at(25.0) == (0.0, 0.0)


def test_rwp_deterministic_from_seed():
    sim1, _r1, m1 = _make_rwp(seed=9)
    sim2, _r2, m2 = _make_rwp(seed=9)
    sim1.run(until=200)
    sim2.run(until=200)
    assert m1.position_at(150.0) == m2.position_at(150.0)


def test_rwp_rejects_bad_speeds():
    sim = Simulator()
    region = Region.of_size(100, 100)
    with pytest.raises(ValueError):
        RandomWaypointMobility(sim, region, random.Random(0), min_speed=0.0)
    with pytest.raises(ValueError):
        RandomWaypointMobility(sim, region, random.Random(0), min_speed=5.0, max_speed=1.0)
    with pytest.raises(ValueError):
        RandomWaypointMobility(sim, region, random.Random(0), pause_time=-1.0)


def test_rwp_explicit_start_position():
    sim = Simulator()
    region = Region.of_size(100, 100)
    mobility = RandomWaypointMobility(
        sim, region, random.Random(0), start=Position(50, 50), pause_time=10.0
    )
    assert mobility.position_at(0.0) == Position(50, 50)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_rwp_in_bounds_property(seed):
    sim, region, mobility = _make_rwp(seed=seed, pause_time=1.0)
    sim.run(until=120)
    for t in (0.0, 30.0, 60.0, 90.0, 119.0):
        assert region.contains(mobility.position_at(t))
