"""Tests for the 802.11 DCF MAC model."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.geo.vec import Position
from repro.net.addresses import BROADCAST
from repro.net.mac.constants import DEFAULT_DOT11, Dot11Params
from repro.net.mac.frames import FrameKind, MacFrame
from repro.net.medium import RadioMedium
from repro.net.mobility import StaticMobility
from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


@dataclass
class _Data(Packet):
    KIND = "data"

    def header_bytes(self) -> int:
        return 20


def _net(positions, params=DEFAULT_DOT11):
    sim = Simulator()
    tracer = Tracer()
    medium = RadioMedium(sim, tracer)
    rngs = RngRegistry(17)
    nodes = [
        Node(sim, i, medium, StaticMobility(p), rngs, tracer, dot11=params)
        for i, p in enumerate(positions)
    ]
    return sim, tracer, nodes


# --------------------------------------------------------------- constants
def test_difs_definition():
    params = Dot11Params()
    assert params.difs == pytest.approx(params.sifs + 2 * params.slot_time)


def test_eifs_exceeds_difs():
    assert DEFAULT_DOT11.eifs > DEFAULT_DOT11.difs


def test_frame_durations_include_plcp():
    params = Dot11Params()
    assert params.control_duration(params.rts_bytes) == pytest.approx(
        192e-6 + 20 * 8 / 1e6
    )
    assert params.data_duration(100) == pytest.approx(192e-6 + (28 + 100) * 8 / 2e6)


def test_broadcast_basic_rate_switch():
    params = Dot11Params(broadcast_at_basic_rate=True)
    assert params.data_duration(100, broadcast=True) > params.data_duration(100)
    default = Dot11Params()
    assert default.data_duration(100, broadcast=True) == default.data_duration(100)


def test_nav_covers_remaining_exchange():
    params = Dot11Params()
    nav_rts = params.nav_for_rts(100)
    nav_cts = params.nav_for_cts(100)
    assert nav_rts > nav_cts > params.data_duration(100)


# ----------------------------------------------------------------- unicast
def test_unicast_delivery_and_completion():
    sim, _tracer, (a, b) = _net([Position(0, 0), Position(100, 0)])
    got, done = [], []
    b.mac.receive_callback = lambda p, f: got.append(p.uid)
    packet = _Data(payload_bytes=64)
    sim.schedule(0.1, lambda: a.mac.send(packet, b.address, done.append))
    sim.run(until=1.0)
    assert got == [packet.uid]
    assert done == [True]


def test_unicast_uses_rts_cts_data_ack():
    sim, tracer, (a, b) = _net([Position(0, 0), Position(100, 0)])
    sim.schedule(0.1, lambda: a.mac.send(_Data(payload_bytes=64), b.address))
    sim.run(until=1.0)
    kinds = [r.data["frame_kind"] for r in tracer.filter("phy.tx")]
    assert kinds == ["rts", "cts", "data", "ack"]


def test_rts_threshold_disables_handshake():
    params = Dot11Params(rts_threshold_bytes=10_000)
    sim, tracer, (a, b) = _net([Position(0, 0), Position(100, 0)], params)
    sim.schedule(0.1, lambda: a.mac.send(_Data(payload_bytes=64), b.address))
    sim.run(until=1.0)
    kinds = [r.data["frame_kind"] for r in tracer.filter("phy.tx")]
    assert kinds == ["data", "ack"]


def test_unicast_to_unreachable_fails_after_retries():
    sim, _tracer, (a, b) = _net([Position(0, 0), Position(1000, 0)])
    done = []
    sim.schedule(0.1, lambda: a.mac.send(_Data(payload_bytes=64), b.address, done.append))
    sim.run(until=5.0)
    assert done == [False]
    assert a.mac.stats.retry_drops == 1
    assert a.mac.stats.retries >= DEFAULT_DOT11.short_retry_limit - 1


def test_broadcast_no_handshake_no_retry():
    sim, tracer, (a, b) = _net([Position(0, 0), Position(100, 0)])
    got, done = [], []
    b.mac.receive_callback = lambda p, f: got.append(p.uid)
    sim.schedule(0.1, lambda: a.mac.send(_Data(payload_bytes=64), BROADCAST, done.append))
    sim.run(until=1.0)
    kinds = [r.data["frame_kind"] for r in tracer.filter("phy.tx")]
    assert kinds == ["data"]
    assert len(got) == 1
    assert done == [True]


def test_broadcast_reaches_all_in_range():
    sim, _tracer, nodes = _net([Position(0, 0), Position(100, 0), Position(200, 0), Position(600, 0)])
    got = {i: [] for i in range(4)}
    for i, node in enumerate(nodes):
        node.mac.receive_callback = lambda p, f, i=i: got[i].append(p.uid)
    sim.schedule(0.1, lambda: nodes[0].mac.send(_Data(payload_bytes=64), BROADCAST))
    sim.run(until=1.0)
    assert len(got[1]) == 1 and len(got[2]) == 1
    assert got[3] == []  # out of range


def test_queue_fifo_order():
    sim, _tracer, (a, b) = _net([Position(0, 0), Position(100, 0)])
    got = []
    b.mac.receive_callback = lambda p, f: got.append(p.uid)
    packets = [_Data(payload_bytes=64) for _ in range(5)]
    def send_all():
        for packet in packets:
            a.mac.send(packet, b.address)
    sim.schedule(0.1, send_all)
    sim.run(until=2.0)
    assert got == [p.uid for p in packets]


def test_queue_overflow_drops_and_reports():
    sim, _tracer, (a, b) = _net([Position(0, 0), Position(100, 0)])
    results = []
    def flood():
        for _ in range(60):  # queue_limit is 50
            a.mac.send(_Data(payload_bytes=64), b.address, results.append)
    sim.schedule(0.1, flood)
    sim.run(until=0.11)
    assert a.mac.stats.queue_drops > 0
    assert results.count(False) == a.mac.stats.queue_drops


def test_nav_defers_third_party():
    """A bystander hearing RTS must not transmit during the exchange."""
    sim, tracer, (a, b, c) = _net(
        [Position(0, 0), Position(100, 0), Position(200, 0)]
    )
    sim.schedule(0.1, lambda: a.mac.send(_Data(payload_bytes=512), b.address))
    # c queues a broadcast right after the RTS is on air.
    sim.schedule(0.1003, lambda: c.mac.send(_Data(payload_bytes=64), BROADCAST))
    sim.run(until=1.0)
    records = [
        (r.data["frame_kind"], r.node, r.time) for r in tracer.filter("phy.tx")
    ]
    exchange_frames = [r for r in records if r[1] in (0, 1)]
    c_tx = [r for r in records if r[1] == 2]
    assert c_tx, "bystander must eventually transmit"
    # The bystander's transmission comes after the protected exchange ends.
    assert c_tx[0][2] > max(t for _, _, t in exchange_frames)


def test_contention_window_resets_after_success():
    sim, _tracer, (a, b) = _net([Position(0, 0), Position(100, 0)])
    sim.schedule(0.1, lambda: a.mac.send(_Data(payload_bytes=64), b.address))
    sim.run(until=1.0)
    assert a.mac._cw == DEFAULT_DOT11.cw_min


def test_completion_callback_failure_for_broadcast_never():
    """Broadcasts cannot fail at the MAC (fire-and-forget semantics)."""
    sim, _tracer, (a, _b) = _net([Position(0, 0), Position(1000, 0)])
    done = []
    sim.schedule(0.1, lambda: a.mac.send(_Data(payload_bytes=64), BROADCAST, done.append))
    sim.run(until=1.0)
    assert done == [True]


def test_stats_counters_consistent():
    sim, _tracer, (a, b) = _net([Position(0, 0), Position(100, 0)])
    for offset in range(3):
        sim.schedule(0.1 + offset * 0.05, lambda: a.mac.send(_Data(payload_bytes=64), b.address))
    sim.run(until=2.0)
    assert a.mac.stats.data_tx == 3
    assert a.mac.stats.rts_tx >= 3
    assert b.mac.stats.cts_tx >= 3
    assert b.mac.stats.ack_tx == 3
    assert b.mac.stats.delivered_up == 3
