"""Edge-case tests: geocast base packet, MAC timing corners, engine misc."""

from __future__ import annotations

import pytest

from repro.geo.vec import Position
from repro.location.geocast import LocationAddressed
from repro.net.addresses import LAST_ATTEMPT
from repro.net.mac.constants import Dot11Params
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


# ------------------------------------------------------------------ geocast
def test_location_addressed_defaults():
    packet = LocationAddressed(target_location=Position(10, 20))
    assert packet.ttl == 64
    assert packet.next_pseudonym == LAST_ATTEMPT
    assert packet.header_bytes() == 35


def test_location_addressed_clone_keeps_uid():
    packet = LocationAddressed(target_location=Position(1, 2), ttl=10)
    clone = packet.clone_for_forwarding(ttl=9, next_pseudonym=b"\x01" * 6)
    assert clone.uid == packet.uid
    assert clone.ttl == 9
    assert packet.ttl == 10


# --------------------------------------------------------------- MAC timing
def test_cts_and_ack_timeouts_cover_their_frames():
    params = Dot11Params()
    assert params.cts_timeout > params.sifs + params.control_duration(params.cts_bytes)
    assert params.ack_timeout > params.sifs + params.control_duration(params.ack_bytes)


def test_nav_rts_longer_for_bigger_payloads():
    params = Dot11Params()
    assert params.nav_for_rts(1000) > params.nav_for_rts(100)


def test_zero_payload_data_frame_still_has_airtime():
    params = Dot11Params()
    assert params.data_duration(0) >= params.plcp_overhead


def test_custom_rates_respected():
    fast = Dot11Params(data_rate=11e6)
    slow = Dot11Params(data_rate=1e6)
    assert fast.data_duration(1000) < slow.data_duration(1000)


# ------------------------------------------------------------------- engine
def test_schedule_at_exact_now_allowed():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.schedule_at(sim.now, lambda: fired.append(1)))
    sim.run()
    assert fired == [1]


def test_event_name_carried():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None, name="my.event")
    assert handle.name == "my.event"


def test_iter_pending_reflects_queue():
    sim = Simulator()
    sim.schedule(1.0, lambda: None, name="a")
    dropped = sim.schedule(2.0, lambda: None, name="b")
    dropped.cancel()
    names = [e.name for e in sim.iter_pending()]
    assert names == ["a"]


# -------------------------------------------------------------------- trace
def test_subscriber_added_mid_run_sees_only_future():
    tracer = Tracer()
    tracer.emit(0.0, "x")
    seen = []
    tracer.subscribe("x", seen.append)
    tracer.emit(1.0, "x")
    assert len(seen) == 1


def test_empty_prefix_subscribes_to_everything():
    tracer = Tracer()
    seen = []
    tracer.subscribe("", seen.append)
    tracer.emit(0.0, "a")
    tracer.emit(0.0, "b.c")
    assert len(seen) == 2


# --------------------------------------------------------- config coherence
def test_agfw_default_timeout_matches_pseudonym_memory():
    """The coherence rule DESIGN.md documents: entries expire before their
    pseudonyms are forgotten (2 beacon intervals vs 2-deep memory)."""
    from repro.core.config import AgfwConfig

    config = AgfwConfig()
    assert config.neighbor_timeout == pytest.approx(
        config.pseudonym_memory * config.beacon_interval
    )


def test_gpsr_default_timeout_is_gpsr_classic():
    from repro.routing.gpsr import GpsrConfig

    assert GpsrConfig().neighbor_timeout == pytest.approx(4.5)
