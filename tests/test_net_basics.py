"""Tests for addresses and the packet base class."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.net.addresses import ADDRESS_BYTES, BROADCAST, MacAddress, mac_for_node
from repro.net.packet import Packet, next_packet_uid


# ----------------------------------------------------------------- addresses
def test_broadcast_is_all_ones():
    assert BROADCAST.is_broadcast
    assert BROADCAST.to_bytes() == b"\xff" * ADDRESS_BYTES


def test_mac_for_node_unique_and_not_broadcast():
    macs = [mac_for_node(i) for i in range(100)]
    assert len(set(macs)) == 100
    assert not any(m.is_broadcast for m in macs)


def test_mac_for_node_rejects_negative():
    with pytest.raises(ValueError):
        mac_for_node(-1)


def test_mac_address_range_check():
    with pytest.raises(ValueError):
        MacAddress(1 << 48)
    with pytest.raises(ValueError):
        MacAddress(-1)


def test_mac_address_str_format():
    assert str(MacAddress(0x0000DEADBEEF)) == "00:00:de:ad:be:ef"


def test_mac_address_equality_and_hash():
    assert MacAddress(5) == MacAddress(5)
    assert len({MacAddress(5), MacAddress(5), MacAddress(6)}) == 2


# ------------------------------------------------------------------- packets
@dataclass
class _Probe(Packet):
    KIND = "probe"

    flag: int = 0

    def header_bytes(self) -> int:
        return 10


def test_packet_uid_unique_and_monotone():
    a, b = _Probe(), _Probe()
    assert b.uid > a.uid


def test_next_packet_uid_increments():
    assert next_packet_uid() < next_packet_uid()


def test_size_is_header_plus_payload():
    packet = _Probe(payload_bytes=64)
    assert packet.size_bytes() == 74


def test_kind_comes_from_class():
    assert _Probe().kind == "probe"


def test_clone_preserves_uid_and_changes_fields():
    packet = _Probe(payload_bytes=64, flag=1)
    clone = packet.clone_for_forwarding(flag=2)
    assert clone.uid == packet.uid
    assert clone.flag == 2
    assert packet.flag == 1  # original untouched
    assert clone is not packet


def test_base_header_bytes_abstract():
    with pytest.raises(NotImplementedError):
        Packet().header_bytes()
