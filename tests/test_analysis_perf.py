"""Wall-clock floor for the analysis engine, gated by the committed baseline.

Absolute timings are hardware-dependent, so the committed
``benchmarks/BENCH_analysis.json`` numbers are treated as a *floor
document*: its schema and derived ratios are asserted exactly, and the
live run here only has to land within a generous multiple of the
committed mean — enough slack for CI-runner variance, tight enough that
an accidental quadratic blowup in the summary fixpoint (the classic
failure mode of interprocedural engines) still fails loudly.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis.engine import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "benchmarks" / "BENCH_analysis.json"

#: CI-variance allowance over the committed mean.
_SLACK = 10.0


def _committed():
    return json.loads(BENCH_PATH.read_text(encoding="utf-8"))


def test_committed_analysis_bench_shape():
    doc = _committed()
    assert doc["schema_version"] == 1
    assert doc["suite"] == "analysis"
    names = set(doc["benchmarks"])
    assert {
        "test_full_src_analysis[intra]",
        "test_full_src_analysis[interproc]",
        "test_full_src_analysis_cached[cold]",
        "test_full_src_analysis_cached[warm]",
    } <= names
    derived = doc["derived"]
    # The cache must never make a run slower than cold.
    assert derived["incremental_cache_speedup"] >= 1.0
    # Cross-module reasoning costs more than the per-module walk, but an
    # overhead past ~20x would mean the fixpoint stopped converging in
    # the small number of rounds it is designed for.
    assert 1.0 <= derived["interproc_overhead"] <= 20.0


def test_full_repo_analysis_within_committed_floor():
    committed_mean = _committed()["benchmarks"]["test_full_src_analysis[interproc]"][
        "mean_s"
    ]
    started = time.perf_counter()
    result = analyze_paths([str(REPO_ROOT / "src")])
    elapsed = time.perf_counter() - started
    assert result.errors == []
    assert elapsed <= committed_mean * _SLACK, (
        f"full-src interprocedural analysis took {elapsed:.2f}s, over "
        f"{_SLACK}x the committed mean of {committed_mean:.2f}s"
    )
