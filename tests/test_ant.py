"""Tests for the Anonymous Neighbor Table and next-hop strategies."""

from __future__ import annotations

import math

import pytest

from repro.core.ant import AnonymousNeighborTable, AntEntry
from repro.core.freshness import STRATEGIES, best_position, freshest_progress
from repro.geo.vec import Position


def _table(timeout=2.0):
    return AnonymousNeighborTable(timeout)


def test_update_and_get():
    table = _table()
    table.update(b"\x01" * 6, Position(10, 0), now=0.0)
    entry = table.get(b"\x01" * 6)
    assert entry is not None
    assert entry.position == Position(10, 0)


def test_multiple_entries_per_physical_neighbor():
    """The defining ANT property: fresh pseudonyms from one neighbor create
    distinct rows because the receiver cannot correlate them."""
    table = _table()
    table.update(b"\x01" * 6, Position(10, 0), now=0.0)
    table.update(b"\x02" * 6, Position(12, 0), now=1.0)  # same node, new hello
    assert len(table) == 2


def test_same_pseudonym_refreshes():
    table = _table()
    table.update(b"\x01" * 6, Position(10, 0), now=0.0)
    table.update(b"\x01" * 6, Position(11, 0), now=0.5)
    assert len(table) == 1
    assert table.get(b"\x01" * 6).position == Position(11, 0)


def test_purge_expired():
    table = _table(timeout=2.0)
    table.update(b"\x01" * 6, Position(0, 0), now=0.0)
    table.update(b"\x02" * 6, Position(0, 0), now=3.0)
    assert table.purge(now=3.0) == 1
    assert b"\x01" * 6 not in table


def test_candidates_strictly_closer():
    table = _table()
    table.update(b"\x01" * 6, Position(100, 0), now=0.0)  # progress
    table.update(b"\x02" * 6, Position(-50, 0), now=0.0)  # regress
    candidates = table.candidates_towards(Position(300, 0), Position(0, 0), now=0.0)
    assert [c.pseudonym for c in candidates] == [b"\x01" * 6]


def test_candidates_exclude_expired():
    table = _table(timeout=1.0)
    table.update(b"\x01" * 6, Position(100, 0), now=0.0)
    assert table.candidates_towards(Position(300, 0), Position(0, 0), now=5.0) == []


def test_remove():
    table = _table()
    table.update(b"\x01" * 6, Position(0, 0), now=0.0)
    table.remove(b"\x01" * 6)
    assert len(table) == 0


def test_timeout_positive():
    with pytest.raises(ValueError):
        AnonymousNeighborTable(0)


def test_predicted_position_dead_reckoning():
    entry = AntEntry(b"\x01" * 6, Position(0, 0), timestamp=0.0, velocity=(10.0, 0.0))
    assert entry.predicted_position(2.0) == Position(20, 0)
    static = AntEntry(b"\x02" * 6, Position(5, 5), timestamp=0.0)
    assert static.predicted_position(10.0) == Position(5, 5)


# ------------------------------------------------------------- strategies
def _entry(pseudonym, x, ts, velocity=(0.0, 0.0)):
    return AntEntry(pseudonym, Position(x, 0), ts, velocity)


def test_best_position_ignores_freshness():
    target = Position(300, 0)
    own = Position(0, 0)
    stale_best = _entry(b"\x01" * 6, 150, ts=0.0)
    fresh_worse = _entry(b"\x02" * 6, 100, ts=9.0)
    chosen = best_position(own, target, [stale_best, fresh_worse], now=10.0, timeout=10.0)
    assert chosen.pseudonym == b"\x01" * 6


def test_freshest_progress_prefers_fresh_entry():
    """Paper Sec 3.1.1: 'preferable to choose a fresher position rather
    than the best one'."""
    target = Position(300, 0)
    own = Position(0, 0)
    stale_best = _entry(b"\x01" * 6, 150, ts=0.0)
    fresh_worse = _entry(b"\x02" * 6, 100, ts=9.5)
    chosen = freshest_progress(own, target, [stale_best, fresh_worse], now=10.0, timeout=10.0)
    assert chosen.pseudonym == b"\x02" * 6


def test_freshest_progress_uses_velocity_prediction():
    target = Position(300, 0)
    own = Position(0, 0)
    # Advertised at x=100 moving toward the target at 20 m/s, 3 s ago -> 160.
    moving = _entry(b"\x01" * 6, 100, ts=0.0, velocity=(20.0, 0.0))
    static = _entry(b"\x02" * 6, 110, ts=0.0)
    chosen = freshest_progress(own, target, [moving, static], now=3.0, timeout=10.0)
    assert chosen.pseudonym == b"\x01" * 6


def test_strategies_none_on_empty():
    assert best_position(Position(0, 0), Position(1, 1), [], 0.0, 1.0) is None
    assert freshest_progress(Position(0, 0), Position(1, 1), [], 0.0, 1.0) is None


def test_freshest_progress_falls_back_when_prediction_regresses():
    target = Position(300, 0)
    own = Position(0, 0)
    # Predicted to have moved past/away, but advertised position had progress.
    runaway = _entry(b"\x01" * 6, 100, ts=0.0, velocity=(-50.0, 0.0))
    chosen = freshest_progress(own, target, [runaway], now=4.0, timeout=10.0)
    assert chosen is not None


def test_strategy_registry():
    assert STRATEGIES["best_position"] is best_position
    assert STRATEGIES["freshest_progress"] is freshest_progress
