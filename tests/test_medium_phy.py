"""Tests for the radio medium and PHY: ranges, capture, half-duplex."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.geo.vec import Position
from repro.net.addresses import BROADCAST, mac_for_node
from repro.net.mac.frames import FrameKind, MacFrame
from repro.net.medium import RadioMedium
from repro.net.mobility import StaticMobility
from repro.net.packet import Packet
from repro.net.phy import CAPTURE_DISTANCE_RATIO, PhyRadio
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


@dataclass
class _Blob(Packet):
    KIND = "blob"

    def header_bytes(self) -> int:
        return 0


def _radio(sim, medium, node_id, x, tracer=None):
    return PhyRadio(sim, node_id, medium, StaticMobility(Position(x, 0)), tracer)


def _frame(src_id):
    return MacFrame(FrameKind.DATA, mac_for_node(src_id), BROADCAST, packet=_Blob(payload_bytes=100))


def _received(radio):
    got = []
    class _Mac:
        def on_frame(self, frame, tx):
            got.append(frame)
        def on_channel_busy(self): ...
        def on_channel_idle(self): ...
    radio.mac = _Mac()
    return got


def test_delivery_within_radio_range():
    sim = Simulator()
    medium = RadioMedium(sim)
    tx = _radio(sim, medium, 0, 0)
    rx = _radio(sim, medium, 1, 249)
    got = _received(rx)
    tx.transmit(_frame(0), 0.001)
    sim.run()
    assert len(got) == 1


def test_no_delivery_beyond_radio_range():
    sim = Simulator()
    medium = RadioMedium(sim)
    tx = _radio(sim, medium, 0, 0)
    rx = _radio(sim, medium, 1, 251)
    got = _received(rx)
    tx.transmit(_frame(0), 0.001)
    sim.run()
    assert got == []


def test_carrier_sensed_within_interference_range():
    sim = Simulator()
    medium = RadioMedium(sim)
    tx = _radio(sim, medium, 0, 0)
    far = _radio(sim, medium, 1, 500)  # 250 < 500 <= 550
    beyond = _radio(sim, medium, 2, 600)
    tx.transmit(_frame(0), 0.010)
    sim.run(until=0.005, max_events=100)
    assert far.carrier_busy
    assert not beyond.carrier_busy


def test_sender_busy_during_own_transmission():
    sim = Simulator()
    medium = RadioMedium(sim)
    tx = _radio(sim, medium, 0, 0)
    tx.transmit(_frame(0), 0.010)
    assert tx.carrier_busy
    sim.run()
    assert not tx.carrier_busy


def test_equal_strength_overlap_collides():
    sim = Simulator()
    medium = RadioMedium(sim)
    a = _radio(sim, medium, 0, 0)
    b = _radio(sim, medium, 1, 400)
    mid = _radio(sim, medium, 2, 200)  # equidistant: no capture possible
    got = _received(mid)
    a.transmit(_frame(0), 0.002)
    b.transmit(_frame(1), 0.002)
    sim.run()
    assert got == []
    assert mid.frames_collided == 2


def test_capture_strong_near_frame_survives_far_interferer():
    sim = Simulator()
    medium = RadioMedium(sim)
    near = _radio(sim, medium, 0, 0)
    rx = _radio(sim, medium, 1, 100)
    interferer = _radio(sim, medium, 2, 100 + 100 * CAPTURE_DISTANCE_RATIO + 50)
    got = _received(rx)
    near.transmit(_frame(0), 0.002)
    interferer.transmit(_frame(2), 0.002)
    sim.run()
    # The near frame captures; the interferer's own frame is corrupted at rx.
    assert [f.src for f in got] == [mac_for_node(0)]


def test_no_capture_when_interferer_too_close():
    sim = Simulator()
    medium = RadioMedium(sim)
    near = _radio(sim, medium, 0, 0)
    rx = _radio(sim, medium, 1, 100)
    interferer = _radio(sim, medium, 2, 100 + 100 * CAPTURE_DISTANCE_RATIO - 20)
    got = _received(rx)
    near.transmit(_frame(0), 0.002)
    interferer.transmit(_frame(2), 0.002)
    sim.run()
    assert got == []


def test_half_duplex_receiver_transmitting_loses_frame():
    sim = Simulator()
    medium = RadioMedium(sim)
    a = _radio(sim, medium, 0, 0)
    b = _radio(sim, medium, 1, 100)
    got = _received(b)
    a.transmit(_frame(0), 0.002)
    b.transmit(_frame(1), 0.002)  # b is deaf while transmitting
    sim.run()
    assert got == []


def test_sequential_frames_both_delivered():
    sim = Simulator()
    medium = RadioMedium(sim)
    a = _radio(sim, medium, 0, 0)
    rx = _radio(sim, medium, 1, 100)
    got = _received(rx)
    a.transmit(_frame(0), 0.001)
    sim.schedule(0.002, lambda: a.transmit(_frame(0), 0.001))
    sim.run()
    assert len(got) == 2


def test_sender_does_not_receive_own_frame():
    sim = Simulator()
    medium = RadioMedium(sim)
    a = _radio(sim, medium, 0, 0)
    got = _received(a)
    a.transmit(_frame(0), 0.001)
    sim.run()
    assert got == []


def test_medium_rejects_interference_smaller_than_radio():
    with pytest.raises(ValueError):
        RadioMedium(Simulator(), radio_range=250, interference_range=100)


def test_neighbors_within():
    sim = Simulator()
    medium = RadioMedium(sim)
    a = _radio(sim, medium, 0, 0)
    _b = _radio(sim, medium, 1, 100)
    _c = _radio(sim, medium, 2, 300)
    assert {r.node_id for r in medium.neighbors_within(a, 250)} == {1}
    assert {r.node_id for r in medium.neighbors_within(a, 550)} == {1, 2}


def test_phy_tx_trace_emitted():
    sim = Simulator()
    tracer = Tracer()
    medium = RadioMedium(sim, tracer)
    a = PhyRadio(sim, 0, medium, StaticMobility(Position(0, 0)), tracer)
    a.transmit(_frame(0), 0.001)
    sim.run()
    records = list(tracer.filter("phy.tx"))
    assert len(records) == 1
    assert records[0].data["packet_kind"] == "blob"
    assert records[0].data["pos"] == (0.0, 0.0)
