"""Wire-size contract tests for every packet type.

Packet sizes feed MAC airtime and every overhead metric; each type's
``header_bytes`` must be positive, stable, and respond to its variable
parts the documented way.  The paper-anchored constants (6-byte
pseudonyms, 64-byte trapdoors) are pinned exactly.
"""

from __future__ import annotations

import pytest

from repro.core.agfw import AgfwAck, AgfwData, AntHello
from repro.core.aant import AantAttachment
from repro.core.als import AlsReply, AlsRequest, AlsUpdate
from repro.core.trapdoor import Trapdoor, TrapdoorContents, TrapdoorFactory
from repro.geo.vec import Position
from repro.location.dlm import DlmReply, DlmRequest, DlmUpdate
from repro.routing.gpsr import GpsrBeacon, GpsrData


def _trapdoor():
    factory = TrapdoorFactory("modeled")
    trapdoor, _ = factory.seal("d", None, TrapdoorContents("s", Position(0, 0), 0.0))
    return trapdoor


ALL_PACKETS = [
    GpsrBeacon(sender_identity="a", position=Position(0, 0)),
    GpsrData(dest_identity="b", dest_location=Position(0, 0)),
    AntHello(pseudonym=b"\x01" * 6, position=Position(0, 0)),
    AgfwData(dest_location=Position(0, 0), trapdoor=_trapdoor()),
    AgfwAck(refs=(b"\x00" * 8,)),
    DlmUpdate(target_location=Position(0, 0), identity="a", position=Position(0, 0)),
    DlmRequest(target_location=Position(0, 0), requester_identity="a",
               requester_location=Position(0, 0), target_identity="b"),
    DlmReply(target_location=Position(0, 0), requester_identity="a",
             target_identity="b", target_position=Position(0, 0)),
    AlsUpdate(target_location=Position(0, 0), index=b"\x00" * 16, blob=_trapdoor()),
    AlsRequest(target_location=Position(0, 0), index=b"\x00" * 16,
               reply_location=Position(0, 0)),
    AlsReply(target_location=Position(0, 0), blobs=(_trapdoor(),)),
]


@pytest.mark.parametrize("packet", ALL_PACKETS, ids=lambda p: p.kind)
def test_header_positive_and_stable(packet):
    size = packet.header_bytes()
    assert size > 0
    assert packet.header_bytes() == size  # no hidden state
    assert packet.size_bytes() == size + packet.payload_bytes


@pytest.mark.parametrize("packet", ALL_PACKETS, ids=lambda p: p.kind)
def test_every_packet_has_wire_view(packet):
    """The adversary interface is total: every PDU declares its cleartext."""
    view = packet.wire_view()
    assert isinstance(view, dict)


def test_agfw_data_header_is_dominated_by_trapdoor():
    data = AgfwData(dest_location=Position(0, 0), trapdoor=_trapdoor())
    bare = AgfwData(dest_location=Position(0, 0), trapdoor=None)
    assert data.header_bytes() - bare.header_bytes() == 64


def test_agfw_ack_grows_per_ref():
    one = AgfwAck(refs=(b"\x00" * 8,))
    three = AgfwAck(refs=(b"\x00" * 8,) * 3)
    assert three.header_bytes() - one.header_bytes() == 16


def test_hello_auth_overhead_included():
    plain = AntHello(pseudonym=b"\x01" * 6, position=Position(0, 0))
    signed = AntHello(
        pseudonym=b"\x01" * 6,
        position=Position(0, 0),
        auth=AantAttachment(ring_size=5, extra_bytes=1000),
    )
    assert signed.header_bytes() == plain.header_bytes() + 1000


def test_als_reply_grows_per_blob():
    one = AlsReply(target_location=Position(0, 0), blobs=(_trapdoor(),))
    two = AlsReply(target_location=Position(0, 0), blobs=(_trapdoor(), _trapdoor()))
    assert two.header_bytes() - one.header_bytes() == 64


def test_pseudonym_adds_no_size_over_mac_addressing():
    """Paper Sec 5: 'we do not think that pseudonym applied in the protocol
    is an extra requirement for packet size' — 6 bytes, like a MAC address."""
    from repro.net.addresses import ADDRESS_BYTES, PSEUDONYM_BYTES

    assert PSEUDONYM_BYTES == ADDRESS_BYTES


def test_gpsr_beacon_smaller_than_aant_hello():
    """Anonymity costs nothing on plain hellos; authentication is what
    costs (the paper's Sec 4 tradeoff)."""
    beacon = GpsrBeacon(sender_identity="a", position=Position(0, 0))
    plain_hello = AntHello(pseudonym=b"\x01" * 6, position=Position(0, 0))
    assert abs(plain_hello.header_bytes() - beacon.header_bytes()) < 16
