"""Tests for metric collectors and summary statistics."""

from __future__ import annotations

import pytest

from repro.metrics.collectors import DeliveryCollector, OverheadCollector
from repro.metrics.stats import mean_confidence_interval, percentile, summarize
from repro.sim.trace import Tracer


# -------------------------------------------------------------------- stats
def test_percentile_basics():
    data = [1.0, 2.0, 3.0, 4.0]
    assert percentile(data, 0) == 1.0
    assert percentile(data, 100) == 4.0
    assert percentile(data, 50) == pytest.approx(2.5)


def test_percentile_single_value():
    assert percentile([7.0], 95) == 7.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_summarize():
    s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
    assert s.count == 5
    assert s.mean == 3.0
    assert s.minimum == 1.0
    assert s.maximum == 5.0
    assert s.p50 == 3.0


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_summarize_single_value_zero_stdev():
    s = summarize([2.0])
    assert s.stdev == 0.0


def test_confidence_interval():
    mean, half = mean_confidence_interval([1.0, 2.0, 3.0])
    assert mean == 2.0
    assert half > 0
    _mean, half_one = mean_confidence_interval([5.0])
    assert half_one == 0.0


# ----------------------------------------------------------------- delivery
def test_delivery_collector_matches_send_recv():
    tracer = Tracer()
    collector = DeliveryCollector(tracer)
    tracer.emit(1.0, "app.send", node=0, packet_uid=1)
    tracer.emit(1.5, "app.recv", node=4, packet_uid=1)
    tracer.emit(2.0, "app.send", node=0, packet_uid=2)  # never delivered
    assert collector.sent == 2
    assert collector.delivered == 1
    assert collector.delivery_fraction == 0.5
    assert collector.mean_latency == pytest.approx(0.5)


def test_delivery_collector_duplicate_recv():
    tracer = Tracer()
    collector = DeliveryCollector(tracer)
    tracer.emit(1.0, "app.send", node=0, packet_uid=1)
    tracer.emit(1.5, "app.recv", node=4, packet_uid=1)
    tracer.emit(1.6, "app.recv", node=4, packet_uid=1)
    assert collector.delivered == 1
    assert collector.duplicate_recv == 1


def test_delivery_collector_unmatched_recv():
    tracer = Tracer()
    collector = DeliveryCollector(tracer)
    tracer.emit(1.0, "app.recv", node=4, packet_uid=99)
    assert collector.unmatched_recv == 1
    assert collector.delivery_fraction == 0.0


def test_delivery_collector_empty():
    collector = DeliveryCollector(Tracer())
    assert collector.delivery_fraction == 0.0
    assert collector.mean_latency == 0.0
    assert collector.latency_summary() is None


def test_delivery_collector_works_without_retention():
    tracer = Tracer(keep=False)
    collector = DeliveryCollector(tracer)
    tracer.emit(1.0, "app.send", node=0, packet_uid=1)
    tracer.emit(1.2, "app.recv", node=1, packet_uid=1)
    assert collector.delivered == 1
    assert len(tracer) == 0


# ----------------------------------------------------------------- overhead
class _FakePacket:
    KIND = "fake"

    def __init__(self, size):
        self._size = size
        self.kind = "fake"

    def size_bytes(self):
        return self._size


def test_overhead_collector_accounts_by_kind():
    tracer = Tracer()
    collector = OverheadCollector(tracer)
    tracer.emit(0.0, "phy.tx", node=0, frame_kind="data", packet_obj=_FakePacket(100))
    tracer.emit(0.0, "phy.tx", node=0, frame_kind="data", packet_obj=_FakePacket(50))
    tracer.emit(0.0, "phy.tx", node=0, frame_kind="rts", packet_obj=None)
    assert collector.total_frames == 3
    assert collector.control_frames == 1
    assert collector.frames_of("fake") == 2
    assert collector.bytes_of("fake") == 150
    assert collector.total_payload_bytes == 150


def test_overhead_collector_unknown_kind_zero():
    collector = OverheadCollector(Tracer())
    assert collector.frames_of("nope") == 0
    assert collector.bytes_of("nope") == 0


def test_percentile_rejects_nan_and_inf():
    """Regression: NaN compares false against everything, so sorted()
    leaves it wherever the input order happened to put it and percentile
    silently returned an order-dependent rank.  Now it refuses."""
    with pytest.raises(ValueError, match="finite"):
        percentile([1.0, float("nan"), 2.0], 50)
    with pytest.raises(ValueError, match="finite"):
        percentile([float("nan"), 1.0, 2.0], 50)
    with pytest.raises(ValueError, match="finite"):
        percentile([1.0, float("inf")], 95)
    with pytest.raises(ValueError, match="finite"):
        percentile([-float("inf"), 1.0], 5)


def test_summarize_rejects_nan_and_inf():
    with pytest.raises(ValueError, match="finite"):
        summarize([0.5, float("nan")])
    with pytest.raises(ValueError, match="finite"):
        summarize([0.5, float("inf"), 1.0])
