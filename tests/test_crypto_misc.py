"""Tests for hashing utilities and the crypto cost model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import hash_to_int, hmac_sha256, mgf1, sha256, truncated_digest
from repro.crypto.timing import DEFAULT_COST_MODEL, CryptoCostModel


# ------------------------------------------------------------------ hashing
def test_sha256_concatenates_parts():
    assert sha256(b"ab", b"c") == sha256(b"abc")


def test_sha256_known_vector():
    assert sha256(b"").hex() == (
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    )


def test_mgf1_lengths():
    assert len(mgf1(b"seed", 0)) == 0
    assert len(mgf1(b"seed", 17)) == 17
    assert len(mgf1(b"seed", 100)) == 100


def test_mgf1_deterministic_and_prefix_consistent():
    assert mgf1(b"s", 64)[:32] == mgf1(b"s", 32)


def test_mgf1_negative_length():
    with pytest.raises(ValueError):
        mgf1(b"s", -1)


def test_truncated_digest_short_and_long():
    assert len(truncated_digest(b"x", 8)) == 8
    assert len(truncated_digest(b"x", 100)) == 100


def test_hmac_differs_by_key():
    assert hmac_sha256(b"k1", b"m") != hmac_sha256(b"k2", b"m")


@given(st.binary(max_size=64), st.integers(min_value=1, max_value=512))
@settings(max_examples=100)
def test_hash_to_int_in_range(data, bits):
    value = hash_to_int(data, bits)
    assert 0 <= value < 2**bits


# --------------------------------------------------------------- cost model
def test_paper_constants():
    """0.5 ms encrypt / 8.5 ms decrypt / 64-byte trapdoor (paper Sec 5)."""
    model = DEFAULT_COST_MODEL
    assert model.pk_encrypt_s == pytest.approx(0.5e-3)
    assert model.pk_decrypt_s == pytest.approx(8.5e-3)
    assert model.trapdoor_bytes == 64
    assert model.rsa_block_bytes == 64


def test_ring_costs_scale_linearly():
    model = DEFAULT_COST_MODEL
    assert model.ring_verify_cost(10) == pytest.approx(10 * model.pk_verify_s)
    assert model.ring_sign_cost(10) == pytest.approx(
        model.pk_sign_s + 10 * model.pk_verify_s
    )


def test_ring_signature_bytes_grow_with_ring():
    model = DEFAULT_COST_MODEL
    assert model.ring_signature_bytes(5) > model.ring_signature_bytes(2)
    assert model.ring_signature_bytes(1) == model.ring_element_bytes * 2


def test_aant_overhead_certificates_vs_serials():
    """Attaching certificates costs much more than listing serials —
    the optimization the paper suggests for warmed caches."""
    model = DEFAULT_COST_MODEL
    with_certs = model.aant_hello_extra_bytes(5, attach_certificates=True)
    with_serials = model.aant_hello_extra_bytes(5, attach_certificates=False)
    assert with_certs > with_serials
    assert with_certs - with_serials == 5 * (
        model.certificate_bytes - model.cert_serial_bytes
    )


def test_invalid_ring_sizes_rejected():
    model = DEFAULT_COST_MODEL
    with pytest.raises(ValueError):
        model.ring_verify_cost(0)
    with pytest.raises(ValueError):
        model.ring_sign_cost(0)
    with pytest.raises(ValueError):
        model.ring_signature_bytes(0)


def test_cost_model_is_frozen():
    with pytest.raises(Exception):
        DEFAULT_COST_MODEL.pk_encrypt_s = 1.0  # type: ignore[misc]


def test_custom_cost_model():
    model = CryptoCostModel(pk_encrypt_s=1e-3, pk_decrypt_s=2e-3)
    assert model.pk_encrypt_s == 1e-3
    assert model.ring_verify_cost(2) == pytest.approx(2 * model.pk_verify_s)
