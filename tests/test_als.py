"""Tests for the Anonymous Location Service (Algorithm 3.3)."""

from __future__ import annotations

import random

import pytest

from repro.core.als import AlsAgent, AlsConfig, AlsReply, AlsRequest, AlsUpdate, make_index
from repro.geo.grid import Grid
from repro.geo.region import Region
from repro.geo.vec import Position
from tests.conftest import build_static_net


def _grid():
    return Grid(Region.of_size(1500, 300), 5, 1)


def _als_net(num_nodes=30, seed=3, senders="all", **config_kwargs):
    rng = random.Random(seed)
    positions = []
    for i in range(num_nodes):
        x = (i % 10) * 150.0 + rng.uniform(0, 60)
        y = (i // 10) * 100.0 + rng.uniform(0, 60)
        positions.append(Position(min(x, 1499), min(y, 299)))
    net = build_static_net(positions, protocol="agfw")
    grid = _grid()
    agents = [
        AlsAgent(node, node.router, grid, AlsConfig(update_interval=5.0, **config_kwargs))
        for node in net.nodes
    ]
    if senders == "all":
        for agent in agents:
            agent.potential_senders = [
                n.identity for n in net.nodes if n.identity != agent.node.identity
            ]
    return net, grid, agents


# -------------------------------------------------------------------- index
def test_index_deterministic_and_shared():
    """A and B must independently derive the same index E_KB(A, B)."""
    assert make_index("A", "B", None) == make_index("A", "B", None)


def test_index_varies_by_pair():
    assert make_index("A", "B", None) != make_index("A", "C", None)
    assert make_index("A", "B", None) != make_index("B", "A", None)


def test_index_real_mode_uses_requester_key(rsa_keys):
    pub = rsa_keys[0].public()
    index = make_index("A", "B", pub, mode="real")
    assert len(index) == pub.byte_size
    assert index == make_index("A", "B", pub, mode="real")
    assert index != make_index("A", "B", rsa_keys[1].public(), mode="real")


# ----------------------------------------------------------------- protocol
def test_update_packets_carry_no_cleartext_identity():
    net, grid, agents = _als_net(10)
    agents[0].send_updates()
    # The update wire image must contain neither identity nor location.
    assert agents[0].messages_sent > 0
    update = AlsUpdate(
        target_location=Position(0, 0),
        index=make_index("A", "B", None),
        blob=None,
    )
    view = update.wire_view()
    assert "identity" not in view
    assert "location" not in view


def test_full_anonymous_lookup_roundtrip():
    net, grid, agents = _als_net()
    for node in net.nodes:
        pass  # routers already started by fixture
    for agent in agents:
        agent.start()
    net.sim.run(until=12.0)
    results = []
    requester_index, target_index = 5, 20
    net.sim.schedule(
        0.1,
        lambda: agents[requester_index].lookup(
            net.nodes[requester_index], net.nodes[target_index].identity, results.append
        ),
    )
    net.sim.run(until=18.0)
    assert len(results) == 1
    assert results[0] is not None
    assert results[0].distance_to(net.nodes[target_index].position) < 1.0


def test_lookup_fails_when_updater_did_not_anticipate_requester():
    """The paper's stated limitation: B can only find A if A updated an
    entry for B."""
    net, grid, agents = _als_net(senders="none")
    for agent in agents:
        agent.potential_senders = []  # nobody anticipates anyone
        agent.start()
    net.sim.run(until=12.0)
    results = []
    net.sim.schedule(
        0.1, lambda: agents[5].lookup(net.nodes[5], net.nodes[20].identity, results.append)
    )
    net.sim.run(until=25.0)
    assert results == [None]


def test_server_stores_only_ciphertext():
    net, grid, agents = _als_net()
    for agent in agents:
        agent.start()
    net.sim.run(until=12.0)
    holders = [a for a in agents if a.store]
    assert holders
    for holder in holders:
        for blob_entry in holder.store.values():
            # The server can only see size; contents are sealed for B.
            assert blob_entry.blob.wire_view() == {"opaque_bytes": 64}


def test_no_index_variant_returns_blob_sets():
    # Without the index the server returns *everything* it holds; the cap
    # must cover the store for the lookup to succeed (the paper's
    # communication-overhead trade, visible here as a large reply).
    net, grid, agents = _als_net(include_index=False, max_reply_blobs=2000)
    for agent in agents:
        agent.start()
    net.sim.run(until=12.0)
    results = []
    net.sim.schedule(
        0.1, lambda: agents[5].lookup(net.nodes[5], net.nodes[20].identity, results.append)
    )
    net.sim.run(until=18.0)
    assert len(results) == 1
    assert results[0] is not None


def test_no_index_request_omits_index_field():
    net, grid, agents = _als_net(include_index=False, senders="none")
    agents[5].potential_senders = []
    sent_packets = []
    original = agents[5].router.forward_location_packet

    def spy(packet, deliver_local):
        sent_packets.append(packet)
        original(packet, deliver_local)

    agents[5].router.forward_location_packet = spy
    agents[5].lookup(net.nodes[5], "node-20", lambda _p: None)
    requests = [p for p in sent_packets if isinstance(p, AlsRequest)]
    assert requests and requests[0].index is None


def test_reply_blobs_opaque_on_wire():
    reply = AlsReply(target_location=Position(0, 0), blobs=())
    assert reply.wire_view() == {"blobs": []}


def test_crypto_accounting_grows_with_updates():
    net, grid, agents = _als_net(10)
    before = agents[0].crypto_ops
    agents[0].send_updates()
    assert agents[0].crypto_ops > before
    assert agents[0].crypto_time_charged > 0


def test_update_cost_scales_with_potential_senders():
    """The paper's limitation, quantified: one entry per anticipated sender."""
    net, grid, agents = _als_net(12, senders="none")
    few, many = agents[0], agents[1]
    few.potential_senders = ["node-2"]
    many.potential_senders = [f"node-{i}" for i in range(2, 10)]
    few.send_updates()
    many.send_updates()
    assert many.messages_sent == 8 * few.messages_sent


def test_invalid_mode_rejected():
    net, grid, _agents = _als_net(4)
    with pytest.raises(ValueError):
        AlsAgent(net.nodes[0], net.nodes[0].router, grid, mode="bogus", install=False)
