"""Frame/reception pooling: generation semantics + trace equivalence.

Pooling is only admissible because it is *outcome-invisible*: each
acquire draws exactly one uid from the same module counter as direct
construction, so the trace-visible uid sequence — and therefore every
trace byte — is identical with the pool off, on, or cross.  ``cross``
additionally scrubs payload fields at release and verifies the scrub at
the next acquire, turning any write-after-free into a loud
:class:`PoolCoherenceError` inside the run itself.
"""

from __future__ import annotations

import pytest

from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.net.addresses import BROADCAST, MacAddress
from repro.net.mac.frames import FrameKind, MacFrame
from repro.net.pool import (
    POOL_MODES,
    FramePool,
    PoolCoherenceError,
    Reception,
    validate_pool_mode,
)


# ------------------------------------------------------------ unit level
def test_pool_mode_validation():
    for mode in POOL_MODES:
        assert validate_pool_mode(mode) == mode
    with pytest.raises(ValueError):
        validate_pool_mode("maybe")
    with pytest.raises(ValueError):
        FramePool("off")  # off means *no pool object at all*
    with pytest.raises(ValueError):
        ScenarioConfig(pool_mode="maybe")


def test_acquire_draws_one_uid_fresh_and_recycled():
    """The uid sequence must be indistinguishable from direct
    construction: one draw per acquire, recycled or not."""
    pool = FramePool("on")
    first = pool.acquire_frame(FrameKind.DATA, MacAddress(1), BROADCAST)
    probe = MacFrame(FrameKind.DATA, MacAddress(1), BROADCAST)
    assert probe.uid == first.uid + 1  # same counter, consecutive draws
    pool.release_frame(first)
    recycled = pool.acquire_frame(FrameKind.ACK, MacAddress(2), MacAddress(1))
    assert recycled is first  # the free list actually recycled it
    assert recycled.uid == probe.uid + 1  # and still drew exactly one uid
    assert recycled.kind is FrameKind.ACK
    assert pool.stats()["frames_reused"] == 1


def test_generation_positive_live_negative_free():
    pool = FramePool("on")
    frame = pool.acquire_frame(FrameKind.RTS, MacAddress(1), MacAddress(2))
    live_gen = frame.generation
    assert live_gen > 0
    pool.release_frame(frame)
    assert frame.generation == -live_gen
    again = pool.acquire_frame(FrameKind.RTS, MacAddress(1), MacAddress(2))
    assert again.generation > live_gen  # monotone counter, restamped


def test_double_release_raises_in_every_mode():
    for mode in ("on", "cross"):
        pool = FramePool(mode)
        frame = pool.acquire_frame(FrameKind.DATA, MacAddress(1), BROADCAST)
        pool.release_frame(frame)
        with pytest.raises(PoolCoherenceError):
            pool.release_frame(frame)


def test_donated_frame_release_is_accepted():
    """Frames constructed directly (generation 0) may enter the pool;
    the release stamps them freed so a double release still raises."""
    pool = FramePool("on")
    donated = MacFrame(FrameKind.ACK, MacAddress(1), MacAddress(2))
    assert donated.generation == 0
    pool.release_frame(donated)
    assert donated.generation == -1
    with pytest.raises(PoolCoherenceError):
        pool.release_frame(donated)


def test_cross_mode_detects_write_after_free():
    pool = FramePool("cross")
    frame = pool.acquire_frame(FrameKind.DATA, MacAddress(1), BROADCAST)
    pool.release_frame(frame)
    frame.nav = 123.0  # the bug class cross mode exists to catch
    with pytest.raises(PoolCoherenceError):
        pool.acquire_frame(FrameKind.DATA, MacAddress(1), BROADCAST)


def test_cross_mode_reception_scrub_roundtrip():
    pool = FramePool("cross")
    rec = pool.acquire_reception(object(), 42.0, True)
    assert rec.generation > 0
    pool.release_reception(rec)
    assert rec.tx is None and rec.distance == 0.0 and rec.corrupted is False
    with pytest.raises(PoolCoherenceError):
        pool.release_reception(rec)
    rec2 = pool.acquire_reception(object(), 7.0, False)
    assert rec2 is rec  # recycled through the scrub check
    assert pool.stats()["recs_reused"] == 1


def test_reception_defaults():
    rec = Reception()
    assert rec.tx is None and rec.distance == 0.0
    assert rec.corrupted is False and rec.generation == 0


# ------------------------------------------------------- scenario level
def _fingerprint(pool_mode: str, seed: int) -> list:
    scenario = Scenario(
        ScenarioConfig(
            protocol="agfw",
            num_nodes=14,
            sim_time=5.0,
            traffic_start=(0.5, 1.5),
            num_flows=5,
            num_senders=4,
            seed=seed,
            static=False,
            pause_time=0.0,
            min_speed=5.0,
            keep_trace=True,
            spatial_mode="obj",
            pool_mode=pool_mode,
        )
    )
    result = scenario.run()
    records = [(repr(r.time), r.category, r.node) for r in scenario.tracer.records]
    assert records, "keep_trace scenario must retain records"
    return [(result.sent, result.delivered, result.collisions)] + records


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_pool_modes_trace_identically(seed):
    prints = [_fingerprint(mode, seed) for mode in POOL_MODES]
    assert prints[0] == prints[1] == prints[2]
    assert prints[0][0][0] > 0  # the workload actually sent traffic


def test_pool_actually_recycles_in_a_scenario():
    scenario = Scenario(
        ScenarioConfig(
            protocol="agfw",
            num_nodes=12,
            sim_time=5.0,
            traffic_start=(0.5, 1.5),
            num_flows=4,
            num_senders=3,
            seed=2,
            pool_mode="on",
        )
    )
    scenario.run()
    stats = scenario.medium.frame_pool.stats()
    assert stats["frames_reused"] > 0  # the free list did real work
    assert stats["recs_reused"] == 0  # "on" keeps receptions in per-radio lists
