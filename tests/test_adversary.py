"""Tests for sniffers, doublet tracking, and anonymity metrics.

These encode the paper's security analysis as executable assertions:
GPSR leaks (identity, location) doublets; AGFW leaks none; routes stay
traceable under AGFW (the paper's admitted non-goal); AANT observations
yield (k+1)-anonymity.
"""

from __future__ import annotations

import pytest

from repro.adversary.anonymity import (
    anonymity_entropy,
    locality_anonymity_sets,
    ring_anonymity,
)
from repro.adversary.sniffer import GlobalSniffer, Observation, Sniffer
from repro.adversary.tracker import DoubletTracker, RouteTracer
from repro.core.config import AgfwConfig
from repro.geo.vec import Position
from tests.conftest import build_static_net, line_positions


def _run_with_sniffer(protocol, send=True):
    net = build_static_net(line_positions(4), protocol=protocol)
    sniffer = GlobalSniffer(net.tracer)
    if send:
        net.sim.schedule(3.0, lambda: net.nodes[0].router.send_data("node-3", 64))
    net.sim.run(until=8.0)
    return net, sniffer


# ------------------------------------------------------------------ sniffer
def test_sniffer_range_limits_observations():
    net = build_static_net(line_positions(4), protocol="gpsr")
    near = Sniffer(net.tracer, Position(0, 0), listen_range=250.0)
    everywhere = GlobalSniffer(net.tracer)
    net.sim.run(until=5.0)
    assert 0 < len(near) < len(everywhere)


def test_sniffer_reads_only_wire_view():
    _net, sniffer = _run_with_sniffer("agfw")
    for obs in sniffer.observations:
        assert "identity" not in obs.wire or obs.packet_kind == "gpsr.beacon"


def test_sniffer_localizes_transmitters():
    net, sniffer = _run_with_sniffer("gpsr")
    positions = {o.tx_position.as_tuple() for o in sniffer.observations if o.tx_position}
    assert positions <= {(x * 200.0, 0.0) for x in range(4)}


def test_sniffer_without_localization():
    net = build_static_net(line_positions(2), protocol="gpsr")
    sniffer = GlobalSniffer(net.tracer, localize=False)
    net.sim.run(until=3.0)
    assert all(o.tx_position is None for o in sniffer.observations)


# ------------------------------------------------------------------ doublets
def test_gpsr_leaks_doublets():
    _net, sniffer = _run_with_sniffer("gpsr")
    tracker = DoubletTracker()
    tracker.ingest(sniffer.observations)
    exposed = tracker.exposed_identities()
    assert len(exposed) == 4  # every beaconing node is exposed
    assert len(tracker.doublets) > 10


def test_agfw_leaks_zero_doublets():
    """The paper's core claim: no node exposes identity and location
    simultaneously."""
    _net, sniffer = _run_with_sniffer("agfw")
    tracker = DoubletTracker()
    tracker.ingest(sniffer.observations)
    assert tracker.doublets == []
    assert tracker.pseudonym_sightings > 0


def test_doublets_for_specific_victim():
    _net, sniffer = _run_with_sniffer("gpsr")
    tracker = DoubletTracker()
    tracker.ingest(sniffer.observations)
    victim = tracker.doublets_for("node-1")
    assert victim
    assert all(d.identity == "node-1" for d in victim)


def test_tracking_coverage_full_under_gpsr():
    _net, sniffer = _run_with_sniffer("gpsr")
    tracker = DoubletTracker()
    tracker.ingest(sniffer.observations)
    coverage = tracker.tracking_coverage("node-1", duration=8.0, horizon=2.0)
    assert coverage > 0.5


def test_tracking_coverage_zero_under_agfw():
    _net, sniffer = _run_with_sniffer("agfw")
    tracker = DoubletTracker()
    tracker.ingest(sniffer.observations)
    assert tracker.tracking_coverage("node-1", duration=8.0) == 0.0


def test_tracking_coverage_interval_merge():
    tracker = DoubletTracker()
    tracker._add(1.0, "x", (0, 0), "gpsr.beacon")
    tracker._add(2.0, "x", (0, 0), "gpsr.beacon")  # overlapping horizons
    coverage = tracker.tracking_coverage("x", duration=10.0, horizon=3.0)
    assert coverage == pytest.approx(4.0 / 10.0)


def test_tracking_coverage_validation():
    with pytest.raises(ValueError):
        DoubletTracker().tracking_coverage("x", duration=0.0)


# -------------------------------------------------------------------- routes
def test_agfw_routes_traceable_but_anonymous():
    """Paper Sec 4: 'the path that a packet follows could be roughly
    estimated' — but without identities."""
    _net, sniffer = _run_with_sniffer("agfw")
    tracer = RouteTracer()
    tracer.ingest(sniffer.observations)
    routes = tracer.routes()
    assert routes  # the data path was reconstructed
    assert any(len(track) >= 2 for track in routes)
    assert tracer.identities_learned() == 0


# ----------------------------------------------------------------- anonymity
def test_anonymity_entropy():
    assert anonymity_entropy(1) == 0.0
    assert anonymity_entropy(8) == 3.0
    with pytest.raises(ValueError):
        anonymity_entropy(0)


def test_ring_anonymity_from_aant_capture():
    from repro.core.aant import AantAuthenticator
    from repro.core.agfw import AgfwRouter
    from repro.core.config import AantConfig

    net = build_static_net(line_positions(3), protocol="agfw", start=False,
                           attach_routers=False)
    config = AgfwConfig(aant=AantConfig(ring_size=4))
    for node in net.nodes:
        auth = AantAuthenticator(config.aant, mode="modeled")
        node.attach_router(AgfwRouter(node, net.oracle, config, net.tracer, authenticator=auth))
    sniffer = GlobalSniffer(net.tracer)
    for node in net.nodes:
        node.start()
    net.sim.run(until=5.0)
    report = ring_anonymity(sniffer.observations)
    assert report.hellos > 0
    assert report.min_set_size == 5
    assert report.k_anonymity == 4
    assert report.mean_entropy_bits == pytest.approx(anonymity_entropy(5))


def test_ring_anonymity_empty_capture():
    report = ring_anonymity([])
    assert report.hellos == 0
    assert report.k_anonymity == -1  # no evidence, no guarantee


def test_locality_anonymity_sets():
    nodes = [Position(0, 0), Position(100, 0), Position(1000, 0)]
    sizes = locality_anonymity_sets([Position(50, 0)], nodes, radio_range=250.0)
    assert sizes == [2]
    # Even an implausible observation yields a candidate set of >= 1.
    assert locality_anonymity_sets([Position(5000, 0)], nodes) == [1]
