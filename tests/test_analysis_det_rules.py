"""Per-rule fixtures for the DET determinism family.

Each rule gets a positive fixture (fires with the right id and line),
a negative fixture (the compliant idiom passes), and — where the rule
has one — an allowlisted-path fixture.
"""

from __future__ import annotations

from tests.analysis_helpers import lint_source, rule_ids


# ------------------------------------------------------------------- DET-001
def test_det001_module_level_draw(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import random

        def pick(items):
            return random.choice(items)
        """,
        select=["DET-001"],
    )
    assert rule_ids(result) == ["DET-001"]
    assert result.findings[0].line == 4


def test_det001_from_import_draw(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        from random import shuffle

        def scramble(items):
            shuffle(items)
        """,
        select=["DET-001"],
    )
    assert rule_ids(result) == ["DET-001"]
    assert "shuffle" in result.findings[0].message


def test_det001_bare_module_as_rng_object(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import random

        def jitter(rng=None):
            rng = rng or random
            return rng.uniform(0.0, 1.0)
        """,
        select=["DET-001"],
    )
    assert rule_ids(result) == ["DET-001"]


def test_det001_explicit_rng_passes(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import random

        def pick(items, rng: random.Random):
            return rng.choice(items)
        """,
        select=["DET-001"],
    )
    assert result.findings == []


# ------------------------------------------------------------------- DET-002
def test_det002_unseeded_random(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import random

        def make_rng():
            return random.Random()
        """,
        select=["DET-002"],
        rel="src/repro/routing/fixture_mod.py",
    )
    assert rule_ids(result) == ["DET-002"]
    assert result.findings[0].line == 4


def test_det002_from_import_form(tmp_path):
    result = lint_source(
        tmp_path,
        "from random import Random\n\nrng = Random()\n",
        select=["DET-002"],
    )
    assert rule_ids(result) == ["DET-002"]


def test_det002_seeded_random_passes(tmp_path):
    result = lint_source(
        tmp_path,
        "import random\n\nrng = random.Random(42)\n",
        select=["DET-002"],
    )
    assert result.findings == []


def test_det002_rng_registry_module_is_exempt(tmp_path):
    result = lint_source(
        tmp_path,
        "import random\n\nrng = random.Random()\n",
        select=["DET-002"],
        rel="src/repro/sim/rng.py",
    )
    assert result.findings == []


# ------------------------------------------------------------------- DET-003
def test_det003_wall_clock(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import time

        def freshness():
            return time.time()
        """,
        select=["DET-003"],
    )
    assert rule_ids(result) == ["DET-003"]
    assert "wall clock" in result.findings[0].message


def test_det003_uuid4_and_urandom(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import os
        import uuid

        def fresh_nonce():
            return uuid.uuid4().bytes + os.urandom(8)
        """,
        select=["DET-003"],
    )
    assert sorted(rule_ids(result)) == ["DET-003", "DET-003"]


def test_det003_datetime_now_via_from_import(tmp_path):
    result = lint_source(
        tmp_path,
        "from datetime import datetime\n\nstamp = datetime.now()\n",
        select=["DET-003"],
    )
    assert rule_ids(result) == ["DET-003"]


def test_det003_perf_counter_is_allowed(tmp_path):
    result = lint_source(
        tmp_path,
        "import time\n\nstarted = time.perf_counter()\n",
        select=["DET-003"],
    )
    assert result.findings == []


# ------------------------------------------------------------------- DET-004
def test_det004_float_time_equality(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        def stale(entry, now):
            return entry.timestamp == now
        """,
        select=["DET-004"],
    )
    assert "DET-004" in rule_ids(result)


def test_det004_tolerance_compare_passes(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        def stale(entry, now, eps=1e-9):
            return abs(entry.timestamp - now) < eps
        """,
        select=["DET-004"],
    )
    assert result.findings == []


def test_det004_integer_tick_compare_passes(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        def on_tick(deadline_tick, tick):
            return int(deadline_tick) == int(tick)
        """,
        select=["DET-004"],
    )
    assert result.findings == []


def test_det004_test_files_are_exempt(tmp_path):
    result = lint_source(
        tmp_path,
        "def check(sim):\n    assert sim.now == 5.0\n",
        select=["DET-004"],
        rel="tests/test_fixture_clock.py",
    )
    assert result.findings == []


# ------------------------------------------------------------------- DET-005
def test_det005_for_loop_over_set(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        def fan_out(discover, send):
            neighbors: set = discover()
            for neighbor in neighbors:
                send(neighbor)
        """,
        select=["DET-005"],
    )
    assert rule_ids(result) == ["DET-005"]
    assert result.findings[0].line == 3


def test_det005_instance_attribute_set(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        class Router:
            def __init__(self):
                self._pending = set()

            def flush(self, send):
                for uid in self._pending:
                    send(uid)
        """,
        select=["DET-005"],
    )
    assert rule_ids(result) == ["DET-005"]


def test_det005_list_conversion_of_set_literal(tmp_path):
    result = lint_source(
        tmp_path,
        'order = list({"a", "b", "c"})\n',
        select=["DET-005"],
    )
    assert rule_ids(result) == ["DET-005"]


def test_det005_sorted_iteration_passes(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        def fan_out(neighbors: set, send):
            for neighbor in sorted(neighbors):
                send(neighbor)
        """,
        select=["DET-005"],
    )
    assert result.findings == []


def test_det005_list_iteration_passes(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        def fan_out(neighbors: list, send):
            for neighbor in neighbors:
                send(neighbor)
        """,
        select=["DET-005"],
    )
    assert result.findings == []


# ------------------------------------------------------------------- DET-006
def test_det006_module_level_itertools_count(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import itertools

        _uid = itertools.count(1)

        def fresh_uid():
            return next(_uid)
        """,
        select=["DET-006"],
    )
    assert rule_ids(result) == ["DET-006"]
    assert result.findings[0].line == 3
    assert "outlives the Simulator" in result.findings[0].message


def test_det006_from_import_count(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        from itertools import count

        _seq = count()
        """,
        select=["DET-006"],
    )
    assert rule_ids(result) == ["DET-006"]


def test_det006_global_int_counter(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        _events = 0

        def bump():
            global _events
            _events += 1
            return _events
        """,
        select=["DET-006"],
    )
    assert rule_ids(result) == ["DET-006"]
    assert "_events" in result.findings[0].message


def test_det006_instance_counter_passes(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import itertools

        class Medium:
            def __init__(self):
                self._tx_uid = itertools.count(1)

            def fresh(self):
                return next(self._tx_uid)
        """,
        select=["DET-006"],
    )
    assert result.findings == []


def test_det006_audited_uid_modules_exempt(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import itertools

        _uid_counter = itertools.count(1)
        """,
        select=["DET-006"],
        rel="src/repro/net/packet.py",
    )
    assert result.findings == []


# ------------------------------------------------------------------- DET-007
def test_det007_module_level_empty_dict(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        _CACHE = {}

        def lookup(key):
            return _CACHE.get(key)
        """,
        select=["DET-007"],
    )
    assert rule_ids(result) == ["DET-007"]
    assert result.findings[0].line == 1
    assert "_CACHE" in result.findings[0].message


def test_det007_cache_constructors_fire(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        from collections import OrderedDict, defaultdict

        _a = dict()
        _b: dict = OrderedDict()
        _c = defaultdict(list)
        """,
        select=["DET-007"],
    )
    assert rule_ids(result) == ["DET-007", "DET-007", "DET-007"]


def test_det007_functools_memo_fires(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import functools

        @functools.lru_cache(maxsize=None)
        def slow(x):
            return x * x
        """,
        select=["DET-007"],
    )
    assert rule_ids(result) == ["DET-007"]
    assert "lru_cache" in result.findings[0].message


def test_det007_from_import_cache_decorator(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        from functools import cache

        @cache
        def slow(x):
            return x * x
        """,
        select=["DET-007"],
    )
    assert rule_ids(result) == ["DET-007"]


def test_det007_lookup_tables_and_instance_caches_pass(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        _SIZES = {"hello": 24, "data": 64}   # populated literal: a table
        _COPY = dict(_SIZES)                 # copy: a table
        _KW = dict(a=1)                      # kwargs: a table


        class Verifier:
            def __init__(self):
                self._seen = {}              # instance-held: dies with owner

            def check(self, key):
                return self._seen.setdefault(key, len(self._seen))
        """,
        select=["DET-007"],
    )
    assert rule_ids(result) == []


def test_det007_audited_cache_module_is_exempt(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        _REGISTRY = {}
        """,
        select=["DET-007"],
        rel="src/repro/crypto/cache.py",
    )
    assert rule_ids(result) == []


# ------------------------------------------------------------------- DET-008
def test_det008_heapq_module_calls_fire(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import heapq

        queue = []

        def add(t, item):
            heapq.heappush(queue, (t, item))

        def pop():
            return heapq.heappop(queue)
        """,
        select=["DET-008"],
    )
    assert rule_ids(result) == ["DET-008", "DET-008"]
    assert "heappush" in result.findings[0].message


def test_det008_from_import_and_alias_fire(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        from heapq import heapify, heapreplace
        import bisect as b

        def rebuild(entries):
            heapify(entries)
            heapreplace(entries, entries[0])

        def insert(entries, item):
            b.insort(entries, item)
        """,
        select=["DET-008"],
    )
    assert rule_ids(result) == ["DET-008", "DET-008", "DET-008"]
    assert "insort" in result.findings[-1].message


def test_det008_selection_helpers_pass(tmp_path):
    """nsmallest/merge are one-shot selection, not a standing queue, and
    bisect_left lookups do not insert — none of them are queues."""
    result = lint_source(
        tmp_path,
        """\
        import bisect
        import heapq

        def top3(xs):
            return heapq.nsmallest(3, xs)

        def merge_sorted(a, b):
            return list(heapq.merge(a, b))

        def rank(xs, x):
            return bisect.bisect_left(xs, x)
        """,
        select=["DET-008"],
    )
    assert rule_ids(result) == []


def test_det008_scheduler_backends_are_exempt(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        from heapq import heappop, heappush

        def push(queue, entry):
            heappush(queue, entry)
        """,
        select=["DET-008"],
        rel="src/repro/sim/timerwheel.py",
    )
    assert rule_ids(result) == []


def test_det008_audited_spatial_index_is_exempt(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        from heapq import heappush

        def note_horizon(heap, when, radio):
            heappush(heap, (when, radio.node_id))
        """,
        select=["DET-008"],
        rel="src/repro/geo/spatial.py",
    )
    assert rule_ids(result) == []


# ------------------------------------------------------------------- DET-013
def test_det013_global_numpy_stream(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import numpy as np

        def jitter(xs):
            return xs + np.random.uniform(0.0, 1.0, len(xs))
        """,
        select=["DET-013"],
    )
    assert rule_ids(result) == ["DET-013"]
    assert "process-global" in result.findings[0].message


def test_det013_unseeded_default_rng(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        from numpy.random import default_rng

        def make_gen():
            return default_rng()
        """,
        select=["DET-013"],
    )
    assert rule_ids(result) == ["DET-013"]
    assert "OS entropy" in result.findings[0].message


def test_det013_unseeded_randomstate(tmp_path):
    result = lint_source(
        tmp_path,
        "import numpy\n\nrs = numpy.random.RandomState()\n",
        select=["DET-013"],
    )
    assert rule_ids(result) == ["DET-013"]


def test_det013_seeded_generator_passes(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import numpy as np

        def make_gen(seed_stream):
            return np.random.default_rng(seed_stream.getrandbits(64))
        """,
        select=["DET-013"],
    )
    assert result.findings == []


def test_det013_unstable_argsort(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import numpy as np

        def order(keys):
            return np.argsort(keys)

        def ranked(keys):
            return np.sort(keys)
        """,
        select=["DET-013"],
    )
    assert rule_ids(result) == ["DET-013", "DET-013"]
    assert 'kind="stable"' in result.findings[0].message


def test_det013_stable_sort_passes(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import numpy as np

        def order(keys):
            return np.argsort(keys, kind="stable")

        def ranked(keys):
            return np.sort(keys, kind="mergesort")
        """,
        select=["DET-013"],
    )
    assert result.findings == []


def test_det013_unique_with_return_index(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import numpy as np

        def firsts(keys):
            values, index = np.unique(keys, return_index=True)
            return index
        """,
        select=["DET-013"],
    )
    assert rule_ids(result) == ["DET-013"]
    assert "return_index" in result.findings[0].message


def test_det013_plain_unique_passes(tmp_path):
    """Sorted uniques carry no tie-order information (the
    ArraySpatialIndex.stats() occupancy count is this shape)."""
    result = lint_source(
        tmp_path,
        """\
        import numpy as np

        def occupancy(packed_cells):
            cells, counts = np.unique(packed_cells, return_counts=True)
            return len(cells), counts.max()
        """,
        select=["DET-013"],
    )
    assert result.findings == []


def test_det013_tests_are_exempt(tmp_path):
    result = lint_source(
        tmp_path,
        "import numpy as np\n\nxs = np.random.rand(4)\n",
        select=["DET-013"],
        rel="tests/test_fixture.py",
    )
    assert result.findings == []


# ------------------------------------------------------------------- DET-014
def test_det014_shard_dict_iteration_feeding_scheduler(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        def drain(sim, ghost_queues):
            ghost_queues = {}
            for shard, batch in ghost_queues.items():
                for tx in batch:
                    sim.schedule_at(tx.start, tx.fire)
        """,
        select=["DET-014"],
    )
    assert rule_ids(result) == ["DET-014"]
    assert "message-" in result.findings[0].message


def test_det014_sorted_shard_dict_passes(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        def drain(sim, ghost_queues):
            ghost_queues = {}
            for shard, batch in sorted(ghost_queues.items()):
                for tx in batch:
                    sim.schedule_at(tx.start, tx.fire)
        """,
        select=["DET-014"],
    )
    assert result.findings == []


def test_det014_shard_dict_without_scheduler_sink_passes(tmp_path):
    """Counting over a worker map never reaches the event queue."""
    result = lint_source(
        tmp_path,
        """\
        def tally(worker_conns):
            worker_conns = {}
            total = 0
            for conn in worker_conns.values():
                total += 1
            return total
        """,
        select=["DET-014"],
    )
    assert result.findings == []


def test_det014_nested_function_sink_does_not_leak(tmp_path):
    """A sink inside a nested helper must not license the outer loop."""
    result = lint_source(
        tmp_path,
        """\
        def outer(sim, shard_map):
            shard_map = {}
            for entry in shard_map.values():
                entry.touch()

            def inner():
                sim.schedule_at(0.0, lambda: None)

            return inner
        """,
        select=["DET-014"],
    )
    assert result.findings == []


def test_det014_getpid_as_identity(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import os

        def worker_tag(config):
            return f"shard-{os.getpid()}"
        """,
        select=["DET-014"],
    )
    assert rule_ids(result) == ["DET-014"]
    assert "per-process identity" in result.findings[0].message


def test_det014_wall_timer_onto_state(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import time

        class Shard:
            def start(self):
                self.started_wall = time.monotonic()
        """,
        select=["DET-014"],
    )
    assert rule_ids(result) == ["DET-014"]
    assert "object state" in result.findings[0].message


def test_det014_local_wallclock_measurement_passes(tmp_path):
    """``t0 = time.perf_counter()`` in a local is legal measurement."""
    result = lint_source(
        tmp_path,
        """\
        import time

        def run(scenario):
            t0 = time.perf_counter()
            scenario.run()
            return time.perf_counter() - t0
        """,
        select=["DET-014"],
    )
    assert result.findings == []


def test_det014_wall_timer_into_scheduling_call(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import time

        def arm(sim, fire):
            sim.schedule_at(time.monotonic(), fire)
        """,
        select=["DET-014"],
    )
    assert rule_ids(result) == ["DET-014"]
    assert "sim.now" in result.findings[0].message


def test_det014_unpickled_set_iteration(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        from typing import Set

        def apply(conn, registry):
            members: Set[str] = conn.recv()
            for name in members:
                registry.add(name)
        """,
        select=["DET-014"],
    )
    assert rule_ids(result) == ["DET-014"]
    assert "hash seed" in result.findings[0].message


def test_det014_set_wrapped_recv_iteration(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        def apply(work_queue, registry):
            for name in set(work_queue.get()):
                registry.add(name)
        """,
        select=["DET-014"],
    )
    assert rule_ids(result) == ["DET-014"]


def test_det014_sorted_unpickled_set_passes(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        from typing import Set

        def apply(conn, registry):
            members: Set[str] = conn.recv()
            for name in sorted(members):
                registry.add(name)
        """,
        select=["DET-014"],
    )
    assert result.findings == []


def test_det014_tests_are_exempt(tmp_path):
    result = lint_source(
        tmp_path,
        "import os\n\npid = os.getpid()\n",
        select=["DET-014"],
        rel="tests/test_fixture.py",
    )
    assert result.findings == []


# ------------------------------------------------------------------- DET-015
def test_det015_shm_view_write_outside_helper(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import numpy as np

        def patch(shm, ids, xs):
            view = np.ndarray((64,), dtype=np.float64, buffer=shm.buf)
            view[ids] = xs
        """,
        select=["DET-015"],
    )
    assert rule_ids(result) == ["DET-015"]
    assert "epoch-barrier" in result.findings[0].message
    assert result.findings[0].line == 5


def test_det015_container_alias_write(tmp_path):
    """A write through an alias of a view-holding dict still fires."""
    result = lint_source(
        tmp_path,
        """\
        import numpy as np

        class Cache:
            def __init__(self, shm):
                self._fields = {}
                self._fields["ox"] = np.ndarray(
                    (64,), dtype=np.float64, buffer=shm.buf
                )

            def poke(self, ids, xs):
                fields = self._fields
                fields["ox"][ids] = xs
        """,
        select=["DET-015"],
    )
    assert rule_ids(result) == ["DET-015"]
    assert "'fields'" in result.findings[0].message


def test_det015_plane_internals_from_outside(tmp_path):
    """Reaching into ShardPlane internals from a consumer module fires."""
    result = lint_source(
        tmp_path,
        """\
        def cheat(plane, node_id, x):
            plane._fields["ox"][node_id] = x
        """,
        select=["DET-015"],
    )
    assert rule_ids(result) == ["DET-015"]


def test_det015_inplace_mutator_fires(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import numpy as np

        def reset(shm):
            view = np.ndarray((64,), dtype=np.float64, buffer=shm.buf)
            view.fill(0.0)
        """,
        select=["DET-015"],
    )
    assert rule_ids(result) == ["DET-015"]
    assert "in-place" in result.findings[0].message


def test_det015_publication_helper_is_sanctioned(tmp_path):
    """The real ShardPlane write sites pass: __init__ and publish_legs."""
    result = lint_source(
        tmp_path,
        """\
        import numpy as np

        class ShardPlane:
            def __init__(self, shm, num_nodes, shards):
                self._fields = {}
                for k, field in enumerate(("ox", "oy")):
                    view = np.ndarray(
                        (num_nodes,), dtype=np.float64, buffer=shm.buf,
                        offset=k * num_nodes * 8,
                    )
                    self._fields[field] = view
                self._epochs = np.ndarray(
                    (shards,), dtype=np.int64, buffer=shm.buf, offset=128
                )
                self._fields["ox"].fill(0.0)
                self._epochs.fill(0)

            def publish_legs(self, shard_index, ids, legs, rows):
                fields = self._fields
                for field in ("ox", "oy"):
                    fields[field][ids] = getattr(legs, field)[rows]
                self._epochs[shard_index] = int(self._epochs[shard_index]) + 1
        """,
        select=["DET-015"],
    )
    assert result.findings == []


def test_det015_reads_and_plain_arrays_pass(tmp_path):
    """Reading the plane and writing ordinary numpy arrays are both fine."""
    result = lint_source(
        tmp_path,
        """\
        import numpy as np

        def resolve(plane, node_id):
            return float(plane._fields["ox"][node_id])

        def scratch(n):
            work = np.zeros(n)
            work[0] = 1.0
            work.fill(2.0)
            return work
        """,
        select=["DET-015"],
    )
    assert result.findings == []


def test_det015_tests_are_exempt(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import numpy as np

        def poke(shm):
            view = np.ndarray((4,), dtype=np.float64, buffer=shm.buf)
            view[0] = 1.0
        """,
        select=["DET-015"],
        rel="tests/test_fixture.py",
    )
    assert result.findings == []
