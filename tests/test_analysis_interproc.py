"""Interprocedural dataflow tests: taint across modules, DET-009..012.

The fixture packages mirror the leak shapes the tentpole was built for:
identity laundered through a helper return, stored into a dataclass
field in another module, cleansed by a sanitizer mid-chain, cycled
through mutual recursion, and injected through call-site arguments.
The acceptance-criteria test proves each cross-module leak is caught by
the interprocedural engine AND missed by the old per-module walk
(``interprocedural=False`` reproduces PR 1's behavior bit for bit).
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.callgraph import CallGraph, SymbolTable, module_name_of
from repro.analysis.core import ModuleContext, ProjectContext
from repro.analysis.dataflow import SEED
from repro.analysis.engine import analyze_paths
from repro.analysis.anon_rules import IDENTITY_SPEC

from tests.analysis_helpers import PACKET_PREAMBLE, lint_source, rule_ids, write_fixture


def pkt(body: str) -> str:
    """Prepend the shared Probe packet class to a dedented module body."""
    return PACKET_PREAMBLE + textwrap.dedent(body)


def lint_package(tmp_path, files, select=None, interprocedural=True):
    for rel, source in sorted(files.items()):
        write_fixture(tmp_path, rel, source)
    return analyze_paths(
        [str(tmp_path / "src")], select=select, interprocedural=interprocedural
    )


def _module(source: str, path: str = "src/repro/x.py") -> ModuleContext:
    return ModuleContext(path, source, ast.parse(source))


# ------------------------------------------------------- helper-return leak
HELPER_LEAK = {
    "src/repro/fixpkg/__init__.py": "",
    "src/repro/fixpkg/helpers.py": """\
        def node_tag(node):
            return node.identity
        """,
    "src/repro/fixpkg/sender.py": pkt("""\
        from repro.fixpkg.helpers import node_tag


        def announce(node, mac):
            probe = Probe(sender=node_tag(node))
            mac.send(probe)
        """),
}


def test_leak_through_helper_return_caught_interprocedurally(tmp_path):
    result = lint_package(tmp_path, HELPER_LEAK, select=["ANON-001"])
    assert rule_ids(result) == ["ANON-001"]
    (finding,) = result.findings
    assert finding.path.endswith("sender.py")


def test_same_leak_provably_missed_by_intra_module_walk(tmp_path):
    """The acceptance criterion: the old per-module engine (PR 1 behavior,
    ``interprocedural=False``) cannot see through ``node_tag`` — the call
    is opaque and its argument carries no seed name — so the identical
    tree lints clean.  The new engine's catch is therefore a genuine
    capability, not a recalibrated heuristic."""
    result = lint_package(
        tmp_path, HELPER_LEAK, select=["ANON-001"], interprocedural=False
    )
    assert result.findings == []


# ----------------------------------------------------- dataclass-field leak
def test_leak_through_dataclass_field_across_modules(tmp_path):
    files = {
        "src/repro/fixpkg/__init__.py": "",
        "src/repro/fixpkg/headers.py": """\
            class RouteHeader:
                def __init__(self, origin: str = ""):
                    self.origin = origin


            def stamp(header: RouteHeader, node) -> None:
                header.origin = node.identity
            """,
        "src/repro/fixpkg/emit.py": pkt("""\
            from repro.fixpkg.headers import RouteHeader, stamp


            def emit(node, mac):
                header = RouteHeader()
                stamp(header, node)
                probe = Probe(sender=header.origin)
                mac.send(probe)
            """),
    }
    result = lint_package(tmp_path, files, select=["ANON-001"])
    assert rule_ids(result) == ["ANON-001"]
    (finding,) = result.findings
    assert finding.path.endswith("emit.py")

    intra = lint_package(tmp_path, files, select=["ANON-001"], interprocedural=False)
    assert intra.findings == []


def test_leak_through_constructor_keyword_field(tmp_path):
    """``Header(origin=node.identity)`` in one module taints the field for
    reads in every other module."""
    files = {
        "src/repro/fixpkg/__init__.py": "",
        "src/repro/fixpkg/headers.py": """\
            class RouteHeader:
                def __init__(self, origin: str = ""):
                    self.origin = origin


            def make_header(node) -> RouteHeader:
                return RouteHeader(origin=node.identity)
            """,
        "src/repro/fixpkg/emit.py": pkt("""\
            from repro.fixpkg.headers import make_header


            def emit(node, mac):
                header = make_header(node)
                mac.send(Probe(sender=header.origin))
            """),
    }
    result = lint_package(tmp_path, files, select=["ANON-001"])
    assert rule_ids(result) == ["ANON-001"]


# -------------------------------------------------------- sanitizer mid-chain
def test_sanitizer_mid_chain_cleanses_across_modules(tmp_path):
    files = dict(HELPER_LEAK)
    files["src/repro/fixpkg/helpers.py"] = """\
        from repro.crypto.hashing import sha256


        def node_tag(node):
            return sha256(node.identity.encode("utf-8"))
        """
    result = lint_package(tmp_path, files, select=["ANON-001"])
    assert result.findings == []


# --------------------------------------------------------- recursion cycle
def test_recursive_call_cycle_terminates_and_propagates(tmp_path):
    files = {
        "src/repro/fixpkg/__init__.py": "",
        "src/repro/fixpkg/cycle.py": """\
            def ping(node, depth):
                if depth == 0:
                    return node.identity
                return pong(node, depth - 1)


            def pong(node, depth):
                return ping(node, depth)
            """,
        "src/repro/fixpkg/sender.py": pkt("""\
            from repro.fixpkg.cycle import ping


            def announce(node, mac):
                mac.send(Probe(sender=ping(node, 3)))
            """),
    }
    result = lint_package(tmp_path, files, select=["ANON-001"])
    assert rule_ids(result) == ["ANON-001"]


# ------------------------------------------------------ call-site injection
def test_taint_and_packet_injected_into_callee_params(tmp_path):
    """Seed and sink live in *different* modules: the caller passes both
    the packet and the identity into a generic helper, and the violation
    is flagged inside the helper."""
    files = {
        "src/repro/fixpkg/__init__.py": "",
        "src/repro/fixpkg/plumbing.py": """\
            def fill(probe, tag):
                probe.sender = tag
            """,
        "src/repro/fixpkg/caller.py": pkt("""\
            from repro.fixpkg.plumbing import fill


            def send(node, mac):
                probe = Probe()
                fill(probe, node.identity)
                mac.send(probe)
            """),
    }
    result = lint_package(tmp_path, files, select=["ANON-001"])
    assert rule_ids(result) == ["ANON-001"]
    (finding,) = result.findings
    assert finding.path.endswith("plumbing.py")


def test_constructed_packet_does_not_retaint_plumbing(tmp_path):
    """A deliberately-leaky packet construction (noqa'd baseline style)
    must not cascade taint through generic forwarding helpers: the
    packet object is a sink, and clean fields read off it stay clean."""
    files = {
        "src/repro/fixpkg/__init__.py": "",
        "src/repro/fixpkg/route.py": pkt("""\
            def build(node):
                return Probe(sender=node.identity)  # repro: noqa[ANON-001] baseline


            def forward(mac, probe):
                clone = Probe(payload=probe.payload)
                mac.send(clone)


            def main(node, mac):
                forward(mac, build(node))
            """),
    }
    result = lint_package(tmp_path, files, select=["ANON-001"])
    assert result.findings == []
    assert [f.rule_id for f in result.suppressed] == ["ANON-001"]


# ------------------------------------------------------------------ DET-009
SCHED_FILES = {
    "src/repro/fixpkg/__init__.py": "",
    "src/repro/fixpkg/state.py": """\
        class Roster:
            def __init__(self):
                self.members = set()


        def fresh_members(roster) -> set:
            return roster.members
        """,
    "src/repro/fixpkg/user.py": """\
        from repro.fixpkg.state import Roster, fresh_members


        def notify(roster, sim):
            for member in roster.members:
                sim.schedule(0.1, member)


        def kick(roster, sim):
            for member in fresh_members(roster):
                notify(roster, sim)
        """,
}


def test_det009_cross_module_set_iteration_into_scheduler(tmp_path):
    result = lint_package(tmp_path, SCHED_FILES, select=["DET-009"])
    assert rule_ids(result) == ["DET-009", "DET-009"]
    assert all(f.path.endswith("user.py") for f in result.findings)
    # ``kick`` only *transitively* reaches the scheduler (through notify).
    assert any("kick" in f.message for f in result.findings)


def test_det009_sorted_wrapper_and_intra_mode_are_clean(tmp_path):
    files = dict(SCHED_FILES)
    files["src/repro/fixpkg/user.py"] = """\
        from repro.fixpkg.state import Roster, fresh_members


        def notify(roster, sim):
            for member in sorted(roster.members):
                sim.schedule(0.1, member)


        def kick(roster, sim):
            for member in sorted(fresh_members(roster)):
                notify(roster, sim)
        """
    assert lint_package(tmp_path, files, select=["DET-009"]).findings == []
    # DET-009 needs the call graph: intra mode must not fire (DET-005
    # keeps covering the intra-module cases).
    assert (
        lint_package(
            tmp_path, SCHED_FILES, select=["DET-009"], interprocedural=False
        ).findings
        == []
    )


def test_det009_leaves_intra_module_sets_to_det005(tmp_path):
    source = """\
        class Beacon:
            def __init__(self, sim):
                self.sim = sim
                self.pending = set()

            def flush(self):
                for item in self.pending:
                    self.sim.schedule(0.1, item)
        """
    result = lint_source(tmp_path, source, select=["DET"])
    assert rule_ids(result) == ["DET-005"]


# ------------------------------------------------------------------ DET-010
def test_det010_flags_id_as_data_and_address_sort_keys(tmp_path):
    source = """\
        def ref_of(obj):
            return id(obj).to_bytes(8, "little")


        def order(items):
            return sorted(items, key=id)
        """
    result = lint_source(tmp_path, source, select=["DET-010"])
    assert rule_ids(result) == ["DET-010", "DET-010"]


def test_det010_exempts_analysis_package_and_shadowed_id(tmp_path):
    clean = lint_source(
        tmp_path,
        "def f(node):\n    return id(node)\n",
        select=["DET-010"],
        rel="src/repro/analysis/fixture_mod.py",
    )
    assert clean.findings == []
    shadowed = lint_source(
        tmp_path,
        "from repro.fix import id\n\n\ndef f(node):\n    return id(node)\n",
        select=["DET-010"],
    )
    assert shadowed.findings == []


# ------------------------------------------------------------------ DET-011
def test_det011_flags_empty_module_level_containers_only(tmp_path):
    source = """\
        import collections

        _PENDING = []
        _SEEN = set()
        _BUF = bytearray()
        _QUEUE = collections.deque()
        TABLE = [1, 2, 3]
        COPY = list(TABLE)


        def local_state():
            scratch = []
            return scratch
        """
    result = lint_source(tmp_path, source, select=["DET-011"])
    assert rule_ids(result) == ["DET-011"] * 4
    assert all(f.line <= 6 for f in result.findings)


# ------------------------------------------------------------------ DET-012
def test_det012_flags_unsorted_enumeration_and_accepts_sorted(tmp_path):
    source = """\
        import os
        from pathlib import Path


        def bad(base: Path):
            names = os.listdir(base)
            files = [p for p in base.rglob("*.py")]
            return names, files


        def good(base: Path):
            names = sorted(os.listdir(base))
            files = sorted(base.rglob("*.py"))
            nested = sorted(str(p) for p in base.iterdir())
            return names, files, nested
        """
    result = lint_source(tmp_path, source, select=["DET-012"])
    assert rule_ids(result) == ["DET-012", "DET-012"]
    assert all(f.line in (6, 7) for f in result.findings)


# -------------------------------------------------------- callgraph machinery
def test_module_name_of_anchors_at_src():
    assert module_name_of("src/repro/routing/gpsr.py") == "repro.routing.gpsr"
    assert module_name_of("/tmp/x/src/repro/core/__init__.py") == "repro.core"
    assert module_name_of("scripts/tool.py") == "tool"


def test_symbol_table_resolves_from_imports_and_methods():
    a = _module(
        "def helper(x):\n    return x\n\n\nclass Base:\n    def ping(self):\n        return 1\n",
        path="src/repro/a.py",
    )
    b = _module(
        "from repro.a import helper, Base\n\n\nclass Child(Base):\n    pass\n",
        path="src/repro/b.py",
    )
    table = SymbolTable([a, b])
    assert table.resolve_local(b, "helper") == "repro.a.helper"
    method = table.class_method("repro.b.Child", "ping")
    assert method is not None and method.qualname == "repro.a.Base.ping"


def test_callgraph_reaching_is_transitive():
    module = _module(
        "def leaf(sim):\n    sim.schedule(1)\n\n\n"
        "def mid(sim):\n    leaf(sim)\n\n\n"
        "def top(sim):\n    mid(sim)\n\n\n"
        "def unrelated():\n    return 0\n",
        path="src/repro/g.py",
    )
    graph = CallGraph(SymbolTable([module]))
    direct = graph.functions_calling(frozenset({"schedule"}))
    reaching = graph.reaching(direct)
    assert {"repro.g.leaf", "repro.g.mid", "repro.g.top"} <= reaching
    assert "repro.g.unrelated" not in reaching


def test_summaries_param_labels_and_seed(tmp_path):
    module = _module(
        "def wrap(x):\n    return [x]\n\n\ndef leak(node):\n    return node.identity\n",
        path="src/repro/s.py",
    )
    project = ProjectContext([module])
    summaries = project.summaries_for(IDENTITY_SPEC)
    assert summaries.return_labels["repro.s.wrap"] == frozenset({"param:x"})
    assert SEED in summaries.return_labels["repro.s.leak"]
