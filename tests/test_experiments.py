"""Tests for the experiment harness: fig1 formatting, security, overhead,
and the one-stop runner."""

from __future__ import annotations

import pytest

from repro.experiments.fig1 import Fig1Point, format_fig1a, format_fig1b, run_fig1
from repro.experiments.overhead import (
    aant_overhead_table,
    format_aant_overhead,
    format_location_service_comparison,
    run_location_service_comparison,
)
from repro.experiments.security import format_exposure, run_exposure_experiment


def _point(scheme, nodes, pdf=0.9, latency=25.0):
    return Fig1Point(
        scheme=scheme, num_nodes=nodes, delivery_fraction=pdf,
        mean_latency_ms=latency, sent=100, delivered=int(100 * pdf), collisions=0,
    )


# ------------------------------------------------------------------- fig1
def test_run_fig1_tiny_sweep():
    points = run_fig1(node_counts=(20,), schemes=("agfw",), sim_time=5.0, seed=2)
    assert len(points) == 1
    point = points[0]
    assert point.scheme == "agfw"
    assert point.sent > 0
    assert 0 <= point.delivery_fraction <= 1


def test_format_fig1a_layout():
    points = [_point("gpsr", 50), _point("agfw", 50), _point("agfw-noack", 50, 0.6)]
    text = format_fig1a(points)
    assert "Figure 1(a)" in text
    assert "gpsr" in text and "agfw-noack" in text
    assert "0.600" in text


def test_format_fig1b_excludes_noack():
    points = [_point("gpsr", 50), _point("agfw", 50), _point("agfw-noack", 50)]
    text = format_fig1b(points)
    assert "agfw-noack" not in text
    assert "25.00" in text


def test_format_handles_missing_cells():
    points = [_point("gpsr", 50), _point("agfw", 100)]
    text = format_fig1a(points)
    assert "50" in text and "100" in text  # both rows render


# ---------------------------------------------------------------- security
def test_exposure_experiment_small():
    reports = run_exposure_experiment(sim_time=6.0, num_nodes=15, seed=3)
    by_protocol = {r.protocol: r for r in reports}
    assert by_protocol["gpsr"].doublets > 0
    assert by_protocol["agfw"].doublets == 0
    text = format_exposure(reports)
    assert "(id, loc) doublets" in text


# ---------------------------------------------------------------- overhead
def test_aant_table_rows():
    rows = aant_overhead_table(ring_sizes=(1, 2))
    assert [r.ring_size for r in rows] == [1, 2]
    assert rows[1].hello_bytes_with_certs > rows[0].hello_bytes_with_certs
    assert "k" in format_aant_overhead(rows)


def test_location_service_comparison_small():
    reports = run_location_service_comparison(
        num_nodes=25, num_lookups=4, senders_per_node=3, seed=19, warmup=10.0
    )
    services = [r.service for r in reports]
    assert services == ["dlm", "als"]
    als = reports[1]
    assert als.crypto_ops > 0
    text = format_location_service_comparison(reports)
    assert "dlm" in text and "als" in text


# ------------------------------------------------------------------ runner
def test_runner_main_smoke(capsys):
    from repro.experiments.runner import main

    code = main([
        "--sim-time", "4", "--nodes", "15", "--skip", "als", "exposure",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 1(a)" in out
    assert "AANT hello overhead" in out
