"""Tests for geometry: positions, regions, grids."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.grid import Grid
from repro.geo.region import Region
from repro.geo.vec import Position, bearing, centroid, distance, distance2, midpoint

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
positions = st.builds(Position, coords, coords)


# ------------------------------------------------------------------ vectors
def test_distance_simple():
    assert distance(Position(0, 0), Position(3, 4)) == 5.0


def test_distance2_avoids_sqrt():
    assert distance2(Position(0, 0), Position(3, 4)) == 25.0


def test_midpoint():
    assert midpoint(Position(0, 0), Position(2, 4)) == Position(1, 2)


def test_towards_interpolates():
    p = Position(0, 0).towards(Position(10, 0), 0.25)
    assert p == Position(2.5, 0)


def test_translated():
    assert Position(1, 1).translated(2, -1) == Position(3, 0)


def test_bearing_cardinal_directions():
    origin = Position(0, 0)
    assert bearing(origin, Position(1, 0)) == pytest.approx(0.0)
    assert bearing(origin, Position(0, 1)) == pytest.approx(math.pi / 2)
    assert bearing(origin, Position(-1, 0)) == pytest.approx(math.pi)


def test_quantized_snaps():
    assert Position(12.3, 17.8).quantized(5.0) == Position(10.0, 20.0)


def test_quantized_rejects_nonpositive_step():
    with pytest.raises(ValueError):
        Position(0, 0).quantized(0)


def test_centroid():
    c = centroid([Position(0, 0), Position(2, 0), Position(1, 3)])
    assert c == Position(1.0, 1.0)


def test_centroid_empty_raises():
    with pytest.raises(ValueError):
        centroid([])


def test_position_iterable_and_tuple():
    x, y = Position(3, 4)
    assert (x, y) == (3, 4)
    assert Position(3, 4).as_tuple() == (3, 4)


@given(positions, positions)
def test_distance_symmetry(a, b):
    assert distance(a, b) == pytest.approx(distance(b, a))


@given(positions, positions, positions)
@settings(max_examples=50)
def test_triangle_inequality(a, b, c):
    assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6


@given(positions, positions)
def test_distance2_matches_distance(a, b):
    assert math.sqrt(distance2(a, b)) == pytest.approx(distance(a, b), rel=1e-9)


# ------------------------------------------------------------------- region
def test_region_of_size():
    region = Region.of_size(1500, 300)
    assert region.width == 1500
    assert region.height == 300
    assert region.area == 450000


def test_region_degenerate_rejected():
    with pytest.raises(ValueError):
        Region(0, 0, 0, 10)


def test_region_contains_boundary():
    region = Region.of_size(10, 10)
    assert region.contains(Position(0, 0))
    assert region.contains(Position(10, 10))
    assert not region.contains(Position(10.1, 5))


def test_region_clamp():
    region = Region.of_size(10, 10)
    assert region.clamp(Position(-5, 5)) == Position(0, 5)
    assert region.clamp(Position(15, 20)) == Position(10, 10)
    assert region.clamp(Position(3, 4)) == Position(3, 4)


def test_region_center_and_diagonal():
    region = Region.of_size(6, 8)
    assert region.center == Position(3, 4)
    assert region.diagonal() == 10.0


def test_random_positions_inside():
    region = Region.of_size(100, 50)
    rng = random.Random(0)
    for _ in range(200):
        assert region.contains(region.random_position(rng))


# --------------------------------------------------------------------- grid
def test_grid_cell_geometry():
    grid = Grid(Region.of_size(1500, 300), cols=5, rows=1)
    assert grid.cell_width == 300
    assert grid.cell_height == 300
    assert grid.cell_count == 5


def test_grid_with_cell_size_rounds_up():
    grid = Grid.with_cell_size(Region.of_size(1500, 300), 400)
    assert grid.cols == 4  # ceil(1500/400)
    assert grid.rows == 1


def test_grid_cell_of_corners():
    grid = Grid(Region.of_size(100, 100), 10, 10)
    assert grid.cell_of(Position(0, 0)) == (0, 0)
    assert grid.cell_of(Position(99.9, 99.9)) == (9, 9)
    assert grid.cell_of(Position(100, 100)) == (9, 9)  # boundary clamps


def test_grid_cell_of_out_of_region_clamps():
    grid = Grid(Region.of_size(100, 100), 10, 10)
    assert grid.cell_of(Position(-50, 500)) == (0, 9)


def test_center_of_cell_is_inside_cell():
    grid = Grid(Region.of_size(100, 100), 4, 4)
    center = grid.center_of((1, 2))
    assert grid.cell_of(center) == (1, 2)


def test_center_of_invalid_cell_raises():
    grid = Grid(Region.of_size(100, 100), 4, 4)
    with pytest.raises(ValueError):
        grid.center_of((4, 0))


def test_cells_enumeration():
    grid = Grid(Region.of_size(10, 10), 3, 2)
    assert len(list(grid.cells())) == 6


def test_neighbors_of_interior_and_corner():
    grid = Grid(Region.of_size(100, 100), 5, 5)
    assert len(grid.neighbors_of((2, 2))) == 9
    assert len(grid.neighbors_of((0, 0))) == 4


def test_home_cells_deterministic_and_public():
    grid = Grid(Region.of_size(1500, 300), 5, 1)
    a = grid.home_cells("node-7", 2)
    b = grid.home_cells("node-7", 2)
    assert a == b
    assert len(set(a)) == 2


def test_home_cells_differ_across_identities():
    grid = Grid(Region.of_size(1500, 300), 8, 2)
    cells = {grid.home_cells(f"node-{i}")[0] for i in range(40)}
    assert len(cells) > 4  # identities spread over the grid


def test_home_cells_count_bounds():
    grid = Grid(Region.of_size(10, 10), 2, 1)
    with pytest.raises(ValueError):
        grid.home_cells("x", 3)
    with pytest.raises(ValueError):
        grid.home_cells("x", 0)


@given(st.floats(min_value=0, max_value=1500), st.floats(min_value=0, max_value=300))
@settings(max_examples=100)
def test_grid_cell_roundtrip_property(x, y):
    grid = Grid(Region.of_size(1500, 300), 5, 1)
    cell = grid.cell_of(Position(x, y))
    assert grid.contains_cell(cell)
