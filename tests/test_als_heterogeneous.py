"""Tests for ALS heterogeneous update strategies (paper Sections 3.3/4).

"In practice, a node may not need to hide its identity or location all
the time ... Once the node does not need a strict privacy protection
any more, it can switch to a normal location service in order to reduce
the effort needed to be accessed by potential senders."
"""

from __future__ import annotations

import random

import pytest

from repro.core.als import AlsAgent, AlsConfig
from repro.geo.grid import Grid
from repro.geo.region import Region
from repro.geo.vec import Position
from tests.conftest import build_static_net


def _als_net(num_nodes=30, seed=3):
    rng = random.Random(seed)
    positions = []
    for i in range(num_nodes):
        x = (i % 10) * 150.0 + rng.uniform(0, 60)
        y = (i // 10) * 100.0 + rng.uniform(0, 60)
        positions.append(Position(min(x, 1499), min(y, 299)))
    net = build_static_net(positions, protocol="agfw")
    grid = Grid(Region.of_size(1500, 300), 5, 1)
    agents = [
        AlsAgent(node, node.router, grid, AlsConfig(update_interval=5.0))
        for node in net.nodes
    ]
    return net, grid, agents


def test_public_node_reachable_without_anticipation():
    """A node with privacy off is findable by *anyone* — no potential-sender
    list required (that is the point of switching)."""
    net, grid, agents = _als_net()
    agents[20].set_privacy(False)  # node-20 opts out of privacy
    for agent in agents:
        agent.start()
    net.sim.run(until=12.0)
    results = []
    net.sim.schedule(
        0.1, lambda: agents[5].lookup(net.nodes[5], "node-20", results.append)
    )
    net.sim.run(until=30.0)  # allow the anonymous-then-plain fallback
    assert len(results) == 1
    assert results[0] is not None
    assert results[0].distance_to(net.nodes[20].position) < 1.0


def test_public_updates_cost_less_than_private():
    """One plain update per server grid vs one encrypted entry per
    anticipated sender — the effort reduction the paper describes."""
    net, grid, agents = _als_net(12)
    private, public = agents[0], agents[1]
    private.potential_senders = [f"node-{i}" for i in range(2, 10)]
    public.set_privacy(False)
    private.send_updates()
    public.send_updates()
    assert public.messages_sent < private.messages_sent
    assert public.crypto_ops == 0
    assert private.crypto_ops > 0


def test_public_updates_leak_doublets_private_do_not():
    """The trade is explicit: plain updates expose the doublet again."""
    net, grid, agents = _als_net(10)
    from repro.adversary.sniffer import GlobalSniffer
    from repro.adversary.tracker import DoubletTracker

    sniffer = GlobalSniffer(net.tracer)
    agents[0].potential_senders = ["node-1"]
    agents[1].set_privacy(False)
    agents[0].send_updates()
    agents[1].send_updates()
    net.sim.run(until=3.0)
    tracker = DoubletTracker()
    tracker.ingest(sniffer.observations)
    exposed = tracker.exposed_identities()
    assert "node-1" in exposed  # the public node is visible again
    assert "node-0" not in exposed  # the private node stays hidden


def test_plain_store_kept_separate_from_ciphertext_store():
    net, grid, agents = _als_net(10)
    agents[1].set_privacy(False)
    agents[0].potential_senders = ["node-2"]
    for agent in agents:
        agent.start()
    net.sim.run(until=12.0)
    holders_plain = [a for a in agents if a.plain_store]
    holders_cipher = [a for a in agents if a.store]
    assert holders_plain  # node-1's plain entry landed somewhere
    assert holders_cipher  # node-0's encrypted entry landed somewhere
    for holder in holders_plain:
        assert all(e.identity == "node-1" for e in holder.plain_store.values())


def test_private_lookup_still_works_when_others_are_public():
    net, grid, agents = _als_net()
    for agent in agents[1:]:
        agent.set_privacy(False)
    agents[20].set_privacy(True)
    agents[20].potential_senders = ["node-5"]
    for agent in agents:
        agent.start()
    net.sim.run(until=12.0)
    results = []
    net.sim.schedule(
        0.1, lambda: agents[5].lookup(net.nodes[5], "node-20", results.append)
    )
    net.sim.run(until=20.0)
    assert results and results[0] is not None
