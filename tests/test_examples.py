"""Smoke tests: every example script runs to completion.

Each example is executed in a subprocess with scaled-down parameters so
the whole file stays under a minute; output markers confirm the
interesting part actually happened (not just a clean exit).
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str, timeout: float = 180.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "delivered: 1 packet(s) at node 5" in out
    assert "pseudonym" in out
    assert "node-" not in out.split("sniffer reads them")[1].split("forwarding")[0]


def test_location_privacy_audit():
    out = _run("location_privacy_audit.py", "--nodes", "15", "--time", "8")
    assert "doublets captured: 0" in out  # AGFW side
    assert "identities exposed" in out
    assert "tracking coverage" in out


def test_anonymous_location_service():
    out = _run("anonymous_location_service.py", "--nodes", "30", "--seed", "5")
    assert "ciphertext entries" in out
    assert "resolved location" in out


def test_authenticated_neighbors():
    out = _run("authenticated_neighbors.py", "--ring-size", "2", "--nodes", "4")
    assert "neighbor tables poisoned: 0" in out
    assert "forged hellos rejected" in out


def test_density_sweep_quick():
    out = _run("density_sweep.py", "--sim-time", "4", "--nodes", "20")
    assert "Figure 1(a)" in out
    assert "Figure 1(b)" in out
