"""Shared helpers for the ``repro.analysis`` test modules.

Fixture sources are written into a temporary tree (so rule path
allowlists based on fnmatch see realistic relative paths like
``src/repro/crypto/keys.py``) and run through the real engine entry
point, exactly as the CLI would.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.engine import AnalysisResult, analyze_paths


def write_fixture(tmp_path: Path, rel: str, source: str) -> Path:
    """Write a dedented fixture module at ``tmp_path/rel``."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def lint_source(
    tmp_path: Path,
    source: str,
    select: Optional[Sequence[str]] = None,
    rel: str = "src/repro/fixture_mod.py",
) -> AnalysisResult:
    """Lint one fixture module and return the full result."""
    path = write_fixture(tmp_path, rel, source)
    return analyze_paths([str(path)], select=select)


def rule_ids(result: AnalysisResult) -> list[str]:
    return [finding.rule_id for finding in result.findings]


#: A minimal packet-class preamble the ANON fixtures share.  The class
#: subclasses the real Packet root (resolved by the project pre-pass
#: through the ``from`` import), so constructor calls are sinks.
PACKET_PREAMBLE = """\
from repro.net.packet import Packet


class Probe(Packet):
    KIND = "probe"
    sender: str = ""
    payload: bytes = b""

    def header_bytes(self) -> int:
        return 8


"""
