"""Tests for planarization and face-routing geometry."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.vec import Position
from repro.routing.planar import (
    crossing_point,
    gabriel_neighbors,
    right_hand_neighbor,
    rng_neighbors,
    segments_cross,
)

coords = st.floats(min_value=-1000, max_value=1000, allow_nan=False)
positions = st.builds(Position, coords, coords)


# ------------------------------------------------------------------ Gabriel
def test_gabriel_keeps_unwitnessed_edge():
    own = Position(0, 0)
    neighbors = [("a", Position(100, 0))]
    assert gabriel_neighbors(own, neighbors) == neighbors


def test_gabriel_removes_witnessed_edge():
    own = Position(0, 0)
    far = ("far", Position(100, 0))
    witness = ("w", Position(50, 1))  # inside the circle with diameter own-far
    kept = gabriel_neighbors(own, [far, witness])
    assert ("far", far[1]) not in kept
    assert ("w", witness[1]) in kept


def test_gabriel_witness_on_circle_kept():
    own = Position(0, 0)
    target = ("t", Position(100, 0))
    on_circle = ("c", Position(50, 50))  # exactly on the circle: not strict
    kept = gabriel_neighbors(own, [target, on_circle])
    assert ("t", target[1]) in kept


def test_rng_stricter_than_gabriel():
    """Every RNG edge is a Gabriel edge (RNG is a subgraph of GG)."""
    own = Position(0, 0)
    neighbors = [
        ("a", Position(100, 0)),
        ("b", Position(60, 40)),
        ("c", Position(-30, 70)),
        ("d", Position(90, -20)),
    ]
    gg = {k for k, _ in gabriel_neighbors(own, neighbors)}
    rng_set = {k for k, _ in rng_neighbors(own, neighbors)}
    assert rng_set <= gg


def test_rng_removes_lune_witnessed_edge():
    own = Position(0, 0)
    far = ("far", Position(100, 0))
    witness = ("w", Position(50, 10))
    kept = {k for k, _ in rng_neighbors(own, [far, witness])}
    assert "far" not in kept


# --------------------------------------------------------------- right hand
def test_right_hand_sweeps_counterclockwise():
    own = Position(0, 0)
    came_from = Position(-100, 0)  # reference pointing west
    candidates = [
        ("north", Position(0, 100)),
        ("east", Position(100, 0)),
        ("south", Position(0, -100)),
    ]
    # Counterclockwise from west: south (270deg from west ccw? sweep from pi):
    # angles: north=pi/2, east=0, south=-pi/2; deltas from pi (ccw): north=3pi/2,
    # east=pi, south=pi/2 -> south is first.
    chosen = right_hand_neighbor(own, came_from, candidates)
    assert chosen[0] == "south"


def test_right_hand_excludes_reference_direction_until_last():
    own = Position(0, 0)
    came_from = Position(-100, 0)
    candidates = [("back", Position(-50, 0)), ("north", Position(0, 100))]
    assert right_hand_neighbor(own, came_from, candidates)[0] == "north"


def test_right_hand_bounces_on_dangling_edge():
    """Sole neighbor = the node we came from: the rule must bounce back."""
    own = Position(0, 0)
    came_from = Position(-100, 0)
    candidates = [("back", Position(-100, 0))]
    assert right_hand_neighbor(own, came_from, candidates)[0] == "back"


def test_right_hand_empty():
    assert right_hand_neighbor(Position(0, 0), Position(1, 0), []) is None


# ---------------------------------------------------------------- crossings
def test_segments_cross_basic():
    assert segments_cross(
        Position(0, 0), Position(10, 10), Position(0, 10), Position(10, 0)
    )


def test_segments_parallel_do_not_cross():
    assert not segments_cross(
        Position(0, 0), Position(10, 0), Position(0, 1), Position(10, 1)
    )


def test_segments_touching_endpoint_not_proper():
    assert not segments_cross(
        Position(0, 0), Position(10, 0), Position(10, 0), Position(20, 10)
    )


def test_crossing_point_value():
    point = crossing_point(
        Position(0, 0), Position(10, 10), Position(0, 10), Position(10, 0)
    )
    assert point == Position(5, 5)


def test_crossing_point_none_when_disjoint():
    assert crossing_point(
        Position(0, 0), Position(1, 1), Position(5, 5), Position(6, 6)
    ) is None


@given(positions, positions, positions, positions)
@settings(max_examples=100)
def test_crossing_point_consistent_with_predicate(a, b, c, d):
    point = crossing_point(a, b, c, d)
    if segments_cross(a, b, c, d):
        assert point is not None


@given(st.lists(st.tuples(st.integers(0, 1000), positions), min_size=1, max_size=8, unique_by=lambda t: t[0]))
@settings(max_examples=50)
def test_gabriel_never_empty_when_neighbors_exist(items):
    """GG keeps at least the closest neighbor (it can never be witnessed)."""
    own = Position(0, 0)
    neighbors = [(str(k), p) for k, p in items if p.distance2_to(own) > 0]
    if not neighbors:
        return
    kept = gabriel_neighbors(own, neighbors)
    assert kept
