"""Shared test fixtures and topology builders."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

import pytest

from repro.core.agfw import AgfwRouter
from repro.core.config import AgfwConfig
from repro.faults import FaultInjector, FaultPlan, make_loss_process
from repro.geo.vec import Position
from repro.location.service import OracleLocationService
from repro.metrics.faults import FaultMetrics
from repro.net.medium import RadioMedium
from repro.net.mobility import StaticMobility
from repro.net.node import Node
from repro.routing.gpsr import GpsrConfig, GpsrRouter
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


@dataclass
class TestNet:
    """A ready-made static network for protocol tests."""

    sim: Simulator
    tracer: Tracer
    medium: RadioMedium
    nodes: List[Node]
    oracle: OracleLocationService
    fault_metrics: Optional[FaultMetrics] = None
    fault_injector: Optional[FaultInjector] = None

    def node_at(self, index: int) -> Node:
        return self.nodes[index]

    def deliveries(self) -> list:
        return [(r.node, r.data["packet_uid"], r.time) for r in self.tracer.filter("app.recv")]

    def sends(self) -> list:
        return [(r.node, r.data["packet_uid"], r.time) for r in self.tracer.filter("app.send")]


def build_static_net(
    positions: Sequence[Position],
    protocol: str = "gpsr",
    seed: int = 42,
    agfw_config: Optional[AgfwConfig] = None,
    gpsr_config: Optional[GpsrConfig] = None,
    start: bool = True,
    attach_routers: bool = True,
    loss_model: str = "none",
    loss_rate: float = 0.0,
    loss_params: Optional[dict] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> TestNet:
    """Build a static network with one node per position.

    ``loss_model``/``loss_rate``/``loss_params`` install a seeded channel
    loss process at every node's PHY (defaults keep the channel perfect);
    ``fault_plan`` arms a :class:`~repro.faults.FaultInjector` so the
    listed nodes crash/recover on schedule once the sim runs.
    """
    sim = Simulator()
    tracer = Tracer()
    medium = RadioMedium(sim, tracer)
    rngs = RngRegistry(seed)
    oracle = OracleLocationService(sim)
    nodes: List[Node] = []
    for index, position in enumerate(positions):
        node = Node(sim, index, medium, StaticMobility(position), rngs, tracer)
        nodes.append(node)
    oracle.register_all(nodes)
    fault_metrics: Optional[FaultMetrics] = None
    fault_injector: Optional[FaultInjector] = None
    if loss_model != "none" or fault_plan is not None:
        fault_metrics = FaultMetrics()
    if loss_model != "none":
        loss_rngs = rngs.fork("faults")
        for node in nodes:
            node.phy.set_loss_process(
                make_loss_process(
                    loss_model,
                    loss_rate,
                    dict(loss_params or {}),
                    rng=loss_rngs.stream(f"loss:{node.node_id}"),
                    metrics=fault_metrics,
                    radio_range=medium.radio_range,
                )
            )
    if fault_plan is not None and fault_plan:
        fault_injector = FaultInjector(sim, nodes, fault_plan, fault_metrics, tracer=tracer)
        fault_injector.arm()
    if attach_routers:
        for node in nodes:
            if protocol == "gpsr":
                router = GpsrRouter(node, oracle, gpsr_config or GpsrConfig(), tracer)
            elif protocol == "agfw":
                router = AgfwRouter(node, oracle, agfw_config or AgfwConfig(), tracer)
            else:
                raise ValueError(f"unknown protocol {protocol!r}")
            node.attach_router(router)
        if start:
            for node in nodes:
                node.start()
    return TestNet(
        sim=sim,
        tracer=tracer,
        medium=medium,
        nodes=nodes,
        oracle=oracle,
        fault_metrics=fault_metrics,
        fault_injector=fault_injector,
    )


def line_positions(count: int, spacing: float = 200.0) -> List[Position]:
    """Evenly spaced nodes on the x axis (spacing < radio range by default)."""
    return [Position(i * spacing, 0.0) for i in range(count)]


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def tracer() -> Tracer:
    return Tracer()


# Deterministic, session-scoped RSA keys: keygen is the slowest crypto
# operation and most tests only need *some* valid keypair.
@pytest.fixture(scope="session")
def rsa_keys():
    from repro.crypto.rsa import generate_keypair

    key_rng = random.Random(99)
    return [generate_keypair(512, key_rng) for _ in range(8)]


@pytest.fixture(scope="session")
def ca_with_nodes():
    """A CA plus six enrolled identities with warmed keystores."""
    from repro.crypto.certificates import CertificateAuthority, KeyStore

    ca = CertificateAuthority(rng=random.Random(7))
    stores = []
    for index in range(6):
        key, cert = ca.enroll(f"node-{index}")
        stores.append(KeyStore(f"node-{index}", key, cert))
    certs = [s.certificate for s in stores]
    for store in stores:
        store.add_all(certs)
    return ca, stores
