"""Shared test fixtures and topology builders."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

import pytest

from repro.core.agfw import AgfwRouter
from repro.core.config import AgfwConfig
from repro.geo.vec import Position
from repro.location.service import OracleLocationService
from repro.net.medium import RadioMedium
from repro.net.mobility import StaticMobility
from repro.net.node import Node
from repro.routing.gpsr import GpsrConfig, GpsrRouter
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


@dataclass
class TestNet:
    """A ready-made static network for protocol tests."""

    sim: Simulator
    tracer: Tracer
    medium: RadioMedium
    nodes: List[Node]
    oracle: OracleLocationService

    def node_at(self, index: int) -> Node:
        return self.nodes[index]

    def deliveries(self) -> list:
        return [(r.node, r.data["packet_uid"], r.time) for r in self.tracer.filter("app.recv")]

    def sends(self) -> list:
        return [(r.node, r.data["packet_uid"], r.time) for r in self.tracer.filter("app.send")]


def build_static_net(
    positions: Sequence[Position],
    protocol: str = "gpsr",
    seed: int = 42,
    agfw_config: Optional[AgfwConfig] = None,
    gpsr_config: Optional[GpsrConfig] = None,
    start: bool = True,
    attach_routers: bool = True,
) -> TestNet:
    """Build a static network with one node per position."""
    sim = Simulator()
    tracer = Tracer()
    medium = RadioMedium(sim, tracer)
    rngs = RngRegistry(seed)
    oracle = OracleLocationService(sim)
    nodes: List[Node] = []
    for index, position in enumerate(positions):
        node = Node(sim, index, medium, StaticMobility(position), rngs, tracer)
        nodes.append(node)
    oracle.register_all(nodes)
    if attach_routers:
        for node in nodes:
            if protocol == "gpsr":
                router = GpsrRouter(node, oracle, gpsr_config or GpsrConfig(), tracer)
            elif protocol == "agfw":
                router = AgfwRouter(node, oracle, agfw_config or AgfwConfig(), tracer)
            else:
                raise ValueError(f"unknown protocol {protocol!r}")
            node.attach_router(router)
        if start:
            for node in nodes:
                node.start()
    return TestNet(sim=sim, tracer=tracer, medium=medium, nodes=nodes, oracle=oracle)


def line_positions(count: int, spacing: float = 200.0) -> List[Position]:
    """Evenly spaced nodes on the x axis (spacing < radio range by default)."""
    return [Position(i * spacing, 0.0) for i in range(count)]


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def tracer() -> Tracer:
    return Tracer()


# Deterministic, session-scoped RSA keys: keygen is the slowest crypto
# operation and most tests only need *some* valid keypair.
@pytest.fixture(scope="session")
def rsa_keys():
    from repro.crypto.rsa import generate_keypair

    key_rng = random.Random(99)
    return [generate_keypair(512, key_rng) for _ in range(8)]


@pytest.fixture(scope="session")
def ca_with_nodes():
    """A CA plus six enrolled identities with warmed keystores."""
    from repro.crypto.certificates import CertificateAuthority, KeyStore

    ca = CertificateAuthority(rng=random.Random(7))
    stores = []
    for index in range(6):
        key, cert = ca.enroll(f"node-{index}")
        stores.append(KeyStore(f"node-{index}", key, cert))
    certs = [s.certificate for s in stores]
    for store in stores:
        store.add_all(certs)
    return ca, stores
