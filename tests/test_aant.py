"""Tests for the authenticated ANT (ring-signed hellos)."""

from __future__ import annotations

import random

import pytest

from repro.core.aant import AantAttachment, AantAuthenticator, hello_signing_bytes
from repro.core.config import AantConfig
from repro.crypto.timing import DEFAULT_COST_MODEL
from repro.geo.vec import Position


def _modeled(k=3):
    return AantAuthenticator(AantConfig(ring_size=k), mode="modeled")


def _real(stores, ca, index=0, k=3):
    return AantAuthenticator(
        AantConfig(ring_size=k),
        mode="real",
        keystore=stores[index],
        ca=ca,
        rng=random.Random(index),
    )


# ------------------------------------------------------------- modeled mode
def test_modeled_sign_and_verify():
    auth = _modeled(k=4)
    attachment, sign_delay = auth.sign_hello(b"\x01" * 6, Position(0, 0), 1.0)
    assert attachment.ring_size == 5
    assert sign_delay == pytest.approx(DEFAULT_COST_MODEL.ring_sign_cost(5))
    valid, verify_delay = auth.verify_hello(attachment, b"\x01" * 6, Position(0, 0), 1.0)
    assert valid
    assert verify_delay == pytest.approx(DEFAULT_COST_MODEL.ring_verify_cost(5))


def test_modeled_forgery_flag_rejected():
    auth = _modeled()
    forged = AantAttachment(ring_size=4, extra_bytes=0, modeled_valid=False)
    valid, _ = auth.verify_hello(forged, b"\x01" * 6, Position(0, 0), 1.0)
    assert not valid


def test_missing_attachment_rejected_free():
    auth = _modeled()
    valid, delay = auth.verify_hello(None, b"\x01" * 6, Position(0, 0), 1.0)
    assert not valid
    assert delay == 0.0


def test_overhead_grows_with_ring():
    small, _ = _modeled(k=1).sign_hello(b"\x01" * 6, Position(0, 0), 0.0)
    large, _ = _modeled(k=8).sign_hello(b"\x01" * 6, Position(0, 0), 0.0)
    assert large.extra_bytes > small.extra_bytes


def test_anonymity_set_size():
    assert _modeled(k=7).anonymity_set_size() == 8


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        AantAuthenticator(AantConfig(), mode="magic")


def test_real_mode_requires_keystore():
    with pytest.raises(ValueError):
        AantAuthenticator(AantConfig(), mode="real")


# ----------------------------------------------------------------- real mode
def test_real_sign_verify_roundtrip(ca_with_nodes):
    ca, stores = ca_with_nodes
    signer = _real(stores, ca, index=0)
    verifier = _real(stores, ca, index=1)
    attachment, _ = signer.sign_hello(b"\x07" * 6, Position(10, 20), 3.0)
    assert attachment.signature is not None
    assert len(attachment.ring_subjects) == 4
    valid, _ = verifier.verify_hello(attachment, b"\x07" * 6, Position(10, 20), 3.0)
    assert valid


def test_real_signer_among_subjects_but_ambiguous(ca_with_nodes):
    """The signer's identity appears in the ring (it must), but its slot
    varies — the verifier cannot pin it down."""
    ca, stores = ca_with_nodes
    signer = _real(stores, ca, index=0)
    positions = set()
    for _ in range(12):
        attachment, _ = signer.sign_hello(b"\x01" * 6, Position(0, 0), 0.0)
        assert "node-0" in attachment.ring_subjects
        positions.add(attachment.ring_subjects.index("node-0"))
    assert len(positions) > 1


def test_real_tampered_position_rejected(ca_with_nodes):
    ca, stores = ca_with_nodes
    signer = _real(stores, ca, index=0)
    verifier = _real(stores, ca, index=1)
    attachment, _ = signer.sign_hello(b"\x07" * 6, Position(10, 20), 3.0)
    valid, _ = verifier.verify_hello(attachment, b"\x07" * 6, Position(99, 20), 3.0)
    assert not valid


def test_real_spoofed_pseudonym_rejected(ca_with_nodes):
    """The spoofing attack of Sec 3.1.1: re-announcing someone's signed
    hello under a different pseudonym must fail verification."""
    ca, stores = ca_with_nodes
    signer = _real(stores, ca, index=0)
    verifier = _real(stores, ca, index=1)
    attachment, _ = signer.sign_hello(b"\x07" * 6, Position(10, 20), 3.0)
    valid, _ = verifier.verify_hello(attachment, b"\x08" * 6, Position(10, 20), 3.0)
    assert not valid


def test_real_unknown_decoy_rejected(ca_with_nodes):
    """A verifier with a cold certificate cache cannot validate the ring
    (the explicit-request optimization is out of scope) — it must reject."""
    ca, stores = ca_with_nodes
    signer = _real(stores, ca, index=0)
    from repro.crypto.certificates import KeyStore

    cold_key, cold_cert = ca.enroll("stranger")
    cold_store = KeyStore("stranger", cold_key, cold_cert)
    verifier = AantAuthenticator(
        AantConfig(ring_size=3), mode="real", keystore=cold_store, ca=ca
    )
    attachment, _ = signer.sign_hello(b"\x07" * 6, Position(0, 0), 0.0)
    valid, _ = verifier.verify_hello(attachment, b"\x07" * 6, Position(0, 0), 0.0)
    assert not valid


def test_real_revoked_decoy_rejected(ca_with_nodes):
    ca, stores = ca_with_nodes
    signer = _real(stores, ca, index=2)
    verifier = _real(stores, ca, index=3)
    attachment, _ = signer.sign_hello(b"\x01" * 6, Position(0, 0), 0.0)
    victim = attachment.ring_subjects[0]
    serial = stores[0].get(victim).serial
    ca.revoke(serial)
    try:
        valid, _ = verifier.verify_hello(attachment, b"\x01" * 6, Position(0, 0), 0.0)
        assert not valid
    finally:
        ca._revoked.discard(serial)  # leave shared fixture clean


def test_signing_bytes_quantization_stable():
    a = hello_signing_bytes(b"\x01" * 6, Position(10.001, 20.002), 1.0)
    b = hello_signing_bytes(b"\x01" * 6, Position(10.001, 20.002), 1.0)
    assert a == b
    c = hello_signing_bytes(b"\x01" * 6, Position(10.5, 20.002), 1.0)
    assert a != c


# ----------------------------------------- delay accounting (PR 3 bugfix)
def test_real_unknown_decoy_charges_no_delay(ca_with_nodes):
    """Regression: the verifier used to charge the full ring_verify_cost
    *before* discovering it could not resolve a decoy certificate — paying
    8+ modular exponentiations' worth of virtual time for a lookup miss.
    A bail-out before any cryptographic work must be free."""
    ca, stores = ca_with_nodes
    signer = _real(stores, ca, index=0)
    from repro.crypto.certificates import KeyStore

    cold_key, cold_cert = ca.enroll("stranger-2")
    cold_store = KeyStore("stranger-2", cold_key, cold_cert)
    verifier = AantAuthenticator(
        AantConfig(ring_size=3), mode="real", keystore=cold_store, ca=ca
    )
    attachment, _ = signer.sign_hello(b"\x07" * 6, Position(0, 0), 0.0)
    valid, delay = verifier.verify_hello(attachment, b"\x07" * 6, Position(0, 0), 0.0)
    assert not valid
    assert delay == 0.0


def test_real_missing_signature_charges_no_delay(ca_with_nodes):
    ca, stores = ca_with_nodes
    verifier = _real(stores, ca, index=1)
    stripped = AantAttachment(ring_size=4, extra_bytes=0, signature=None)
    valid, delay = verifier.verify_hello(stripped, b"\x07" * 6, Position(0, 0), 0.0)
    assert not valid
    assert delay == 0.0


def test_real_resolvable_ring_charges_full_cost(ca_with_nodes):
    """Once every ring member is resolvable the cryptographic work happens
    (or is memoized) and the full cost is charged — valid or not."""
    ca, stores = ca_with_nodes
    signer = _real(stores, ca, index=0)
    verifier = _real(stores, ca, index=1)
    args = (b"\x09" * 6, Position(5, 5), 1.0)
    attachment, _ = signer.sign_hello(*args)
    expected = DEFAULT_COST_MODEL.ring_verify_cost(attachment.ring_size)

    valid, delay = verifier.verify_hello(attachment, *args)
    assert valid and delay == pytest.approx(expected)

    # A tampered message fails *inside* ring verification: cost still paid.
    valid, delay = verifier.verify_hello(attachment, b"\x0a" * 6, Position(5, 5), 1.0)
    assert not valid and delay == pytest.approx(expected)
