"""Tests for the DLM location service over GPSR."""

from __future__ import annotations

import pytest

from repro.geo.grid import Grid
from repro.geo.region import Region
from repro.geo.vec import Position
from repro.location.dlm import DlmAgent, DlmConfig, DlmReply, DlmRequest, DlmUpdate
from tests.conftest import build_static_net


def _grid():
    return Grid(Region.of_size(1500, 300), 5, 1)


def _dense_net(num_nodes=30, seed=3):
    """A connected static field covering all grid cells."""
    import random

    rng = random.Random(seed)
    # Deterministic lattice + jitter guarantees coverage of every cell.
    positions = []
    for i in range(num_nodes):
        x = (i % 10) * 150.0 + rng.uniform(0, 60)
        y = (i // 10) * 100.0 + rng.uniform(0, 60)
        positions.append(Position(min(x, 1499), min(y, 299)))
    net = build_static_net(positions, protocol="gpsr")
    grid = _grid()
    agents = [
        DlmAgent(node, node.router, grid, DlmConfig(update_interval=5.0))
        for node in net.nodes
    ]
    return net, grid, agents


def test_install_registers_handlers_and_service():
    net, grid, agents = _dense_net(10)
    router = net.nodes[0].router
    assert router.location_service is agents[0]
    assert DlmUpdate in router.packet_handlers
    assert DlmRequest in router.packet_handlers
    assert DlmReply in router.packet_handlers


def test_updates_reach_server_grid():
    net, grid, agents = _dense_net()
    for agent in agents:
        agent.start()
    net.sim.run(until=12.0)
    # Someone inside each updater's home cell must have stored its entry.
    stored_total = sum(agent.updates_stored for agent in agents)
    assert stored_total > 0
    target = net.nodes[0].identity
    holders = [a for a in agents if target in a.store]
    assert holders
    home = grid.home_cells(target, 1)[0]
    for holder in holders:
        assert grid.cell_of(holder.node.position) == home


def test_lookup_roundtrip():
    net, grid, agents = _dense_net()
    for agent in agents:
        agent.start()
    net.sim.run(until=12.0)
    results = []
    requester = net.nodes[5]
    target = net.nodes[20]
    net.sim.schedule(
        0.1, lambda: agents[5].lookup(requester, target.identity, results.append)
    )
    net.sim.run(until=18.0)
    assert len(results) == 1
    assert results[0] is not None
    assert results[0].distance_to(target.position) < 1.0  # static: exact


def test_lookup_unknown_identity_times_out():
    net, grid, agents = _dense_net(12)
    for agent in agents:
        agent.start()
    net.sim.run(until=8.0)
    results = []
    net.sim.schedule(0.1, lambda: agents[0].lookup(net.nodes[0], "ghost", results.append))
    net.sim.run(until=20.0)
    assert results == [None]
    assert agents[0].lookups_failed == 1


def test_local_cache_short_circuits():
    net, grid, agents = _dense_net(10)
    from repro.location.dlm import StoredLocation

    agents[0].store["node-5"] = StoredLocation("node-5", Position(1, 2), 0.0, net.sim.now)
    results = []
    agents[0].lookup(net.nodes[0], "node-5", results.append)
    assert results == [Position(1, 2)]
    assert agents[0].messages_sent == 0


def test_stale_entries_not_served():
    net, grid, agents = _dense_net(10)
    from repro.location.dlm import StoredLocation

    agents[0].store["node-5"] = StoredLocation("node-5", Position(1, 2), 0.0, -100.0)
    results = []
    agents[0].lookup(net.nodes[0], "node-5", results.append)
    assert results == []  # stale: went to the network instead


def test_update_packets_leak_doublets():
    """DLM's privacy failure, asserted: updates carry cleartext doublets."""
    update = DlmUpdate(
        target_location=Position(0, 0),
        identity="node-3",
        position=Position(7, 8),
        timestamp=1.0,
    )
    view = update.wire_view()
    assert view["identity"] == "node-3"
    assert view["location"] == (7, 8)


def test_request_leaks_requester():
    request = DlmRequest(
        target_location=Position(0, 0),
        requester_identity="node-1",
        requester_location=Position(3, 4),
        target_identity="node-2",
    )
    view = request.wire_view()
    assert view["requester_identity"] == "node-1"
    assert view["target_identity"] == "node-2"


def test_is_server_for():
    net, grid, agents = _dense_net(10)
    identity = net.nodes[0].identity
    home = grid.home_cells(identity, 1)[0]
    for agent in agents:
        expected = grid.cell_of(agent.node.position) == home
        assert agent.is_server_for(identity) == expected


def test_home_cells_respect_config():
    net, grid, agents = _dense_net(4)
    agent = DlmAgent(
        net.nodes[0], net.nodes[0].router, grid,
        DlmConfig(servers_per_node=3), install=False,
    )
    assert len(agent.home_cells()) == 3
