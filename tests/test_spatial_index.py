"""Unit tests for :mod:`repro.geo.spatial`.

The index's one contract: for any query, filtering its candidate list by
true distance yields the same radios in the same registration order as
the brute-force scan.  These tests exercise the machinery behind it —
lazy rebucketing horizons, teleport invalidation, the unbounded-model
fallback, and the version-stamped gather cache.
"""

from __future__ import annotations

import random

import pytest

from repro.geo.spatial import SpatialIndex
from repro.geo.vec import Position
from repro.net.mobility import StaticMobility


class _LinearMobility:
    """Straight-line motion with a declared speed bound (RWP stand-in)."""

    def __init__(self, start: Position, vx: float, vy: float, max_speed: float) -> None:
        self.start = start
        self.vx = vx
        self.vy = vy
        self.max_speed = max_speed

    def position_at(self, time: float) -> Position:
        return Position(self.start.x + self.vx * time, self.start.y + self.vy * time)

    def subscribe(self, callback) -> None:
        """Protocol no-op: continuous trajectory, nothing to notify."""


class _OpaqueMobility:
    """No speed bound (no ``max_speed``): the unknowable case."""

    def __init__(self, position: Position) -> None:
        self._position = position

    def position_at(self, time: float) -> Position:
        return self._position

    def subscribe(self, callback) -> None:
        """Protocol no-op: this test mutates ``_position`` silently on
        purpose, exercising the rebin-every-query fallback."""


class _FakeRadio:
    """The only attributes the index reads: ``mobility`` (and identity)."""

    def __init__(self, node_id: int, mobility) -> None:
        self.node_id = node_id
        self.mobility = mobility


def _brute(radios, center: Position, rng: float, now: float):
    limit = rng * rng
    return [
        r for r in radios
        if r.mobility.position_at(now).distance2_to(center) <= limit
    ]


def _filtered(index: SpatialIndex, radios, center: Position, rng: float, now: float):
    limit = rng * rng
    return [
        r for r in index.candidates_within(center, rng, now)
        if r.mobility.position_at(now).distance2_to(center) <= limit
    ]


# ------------------------------------------------------------ construction
def test_cell_size_must_be_positive():
    with pytest.raises(ValueError):
        SpatialIndex(cell_size=0.0)


def test_refresh_quantum_must_be_positive_when_given():
    with pytest.raises(ValueError):
        SpatialIndex(cell_size=100.0, refresh_quantum=0.0)


# --------------------------------------------------------------- exactness
def test_static_candidates_match_brute_force_filtered():
    rng = random.Random(7)
    index = SpatialIndex(cell_size=250.0)
    radios = [
        _FakeRadio(i, StaticMobility(Position(rng.uniform(0, 1500), rng.uniform(0, 300))))
        for i in range(60)
    ]
    for radio in radios:
        index.add(radio, now=0.0)
    for _ in range(25):
        center = Position(rng.uniform(-100, 1600), rng.uniform(-100, 400))
        reach = rng.uniform(1.0, 600.0)
        assert _filtered(index, radios, center, reach, 0.0) == _brute(
            radios, center, reach, 0.0
        )


def test_candidates_preserve_registration_order():
    index = SpatialIndex(cell_size=100.0)
    # Register out of positional order; candidates must come back in
    # registration order (the brute-force iteration order).
    positions = [Position(90.0, 0.0), Position(10.0, 0.0), Position(50.0, 0.0)]
    radios = [_FakeRadio(i, StaticMobility(p)) for i, p in enumerate(positions)]
    for radio in radios:
        index.add(radio, now=0.0)
    assert index.candidates_within(Position(50.0, 0.0), 100.0, 0.0) == radios


def test_zero_range_query_returns_cell_locals_only():
    index = SpatialIndex(cell_size=100.0)
    near = _FakeRadio(0, StaticMobility(Position(10.0, 10.0)))
    far = _FakeRadio(1, StaticMobility(Position(950.0, 10.0)))
    index.add(near, 0.0)
    index.add(far, 0.0)
    candidates = index.candidates_within(Position(10.0, 10.0), 0.0, 0.0)
    assert near in candidates and far not in candidates


# ------------------------------------------------------- lazy rebucketing
def test_moving_radio_rebins_only_after_horizon():
    index = SpatialIndex(cell_size=100.0)
    # Centered in its cell, 10 m/s: margin 50 m -> horizon t=5.
    mover = _FakeRadio(0, _LinearMobility(Position(50.0, 50.0), 10.0, 0.0, 10.0))
    index.add(mover, now=0.0)
    binned_once = index.rebins
    index.refresh(now=4.9)  # strictly before the horizon: no rebin
    assert index.rebins == binned_once
    index.refresh(now=5.0)  # horizon passed: rebin happens
    assert index.rebins == binned_once + 1


def test_moving_radio_found_after_cell_crossing():
    index = SpatialIndex(cell_size=100.0)
    mover = _FakeRadio(0, _LinearMobility(Position(95.0, 50.0), 10.0, 0.0, 10.0))
    anchor = _FakeRadio(1, StaticMobility(Position(250.0, 50.0)))
    index.add(mover, now=0.0)
    index.add(anchor, now=0.0)
    # At t=10 the mover sits at x=195 (cell 1); a query around x=195 must
    # find it even though it was binned in cell 0 at t=0.
    center = Position(195.0, 50.0)
    assert _filtered(index, [mover, anchor], center, 50.0, 10.0) == [mover]


def test_static_radios_never_rebin():
    index = SpatialIndex(cell_size=100.0)
    radios = [_FakeRadio(i, StaticMobility(Position(i * 30.0, 0.0))) for i in range(5)]
    for radio in radios:
        index.add(radio, 0.0)
    after_add = index.rebins
    for t in range(1, 50):
        index.candidates_within(Position(0.0, 0.0), 120.0, float(t))
    assert index.rebins == after_add


def test_boundary_radio_does_not_livelock_refresh():
    """A radio exactly on a cell edge has margin 0 (horizon == now); the
    drain-then-rebin refresh must terminate and stay correct."""
    index = SpatialIndex(cell_size=100.0)
    edge = _FakeRadio(0, _LinearMobility(Position(100.0, 50.0), 1.0, 0.0, 1.0))
    index.add(edge, now=0.0)
    for t in (0.0, 0.5, 1.0):
        assert _filtered(index, [edge], Position(100.0, 50.0), 10.0, t) == [edge]


def test_refresh_quantum_caps_horizons():
    index = SpatialIndex(cell_size=1000.0, refresh_quantum=1.0)
    slow = _FakeRadio(0, _LinearMobility(Position(500.0, 500.0), 0.1, 0.0, 0.1))
    index.add(slow, now=0.0)
    binned_once = index.rebins
    index.refresh(now=1.5)  # analytic horizon is ~5000 s away; quantum forces it
    assert index.rebins == binned_once + 1


# --------------------------------------------------------------- teleports
def test_teleport_invalidates_immediately():
    index = SpatialIndex(cell_size=100.0)
    mobility = StaticMobility(Position(50.0, 50.0))
    radio = _FakeRadio(0, mobility)
    index.add(radio, 0.0)
    mobility.move_to(Position(850.0, 50.0))
    old_site = _filtered(index, [radio], Position(50.0, 50.0), 60.0, 1.0)
    new_site = _filtered(index, [radio], Position(850.0, 50.0), 60.0, 1.0)
    assert old_site == []
    assert new_site == [radio]


def test_same_cell_teleport_bumps_version():
    """Teleports that stay inside one cell still change positions, so
    position-derived caches keyed on the version must be dropped."""
    index = SpatialIndex(cell_size=1000.0)
    mobility = StaticMobility(Position(100.0, 100.0))
    index.add(_FakeRadio(0, mobility), 0.0)
    before = index.version
    mobility.move_to(Position(200.0, 200.0))  # same 1000 m cell
    assert index.version > before


# ------------------------------------------------------ unbounded fallback
def test_unbounded_model_rebins_every_refresh_and_stays_correct():
    index = SpatialIndex(cell_size=100.0)
    opaque = _OpaqueMobility(Position(50.0, 50.0))
    radio = _FakeRadio(0, opaque)
    index.add(radio, 0.0)
    binned_once = index.rebins
    index.refresh(1.0)
    index.refresh(2.0)
    assert index.rebins == binned_once + 2  # once per refresh, no horizon
    # Mutate the position behind the index's back: the per-query rebin
    # must still produce the right answer.
    opaque._position = Position(650.0, 50.0)
    assert _filtered(index, [radio], Position(650.0, 50.0), 60.0, 3.0) == [radio]
    assert _filtered(index, [radio], Position(50.0, 50.0), 60.0, 3.0) == []


def test_all_static_property():
    index = SpatialIndex(cell_size=100.0)
    index.add(_FakeRadio(0, StaticMobility(Position(0.0, 0.0))), 0.0)
    assert index.all_static
    index.add(_FakeRadio(1, _LinearMobility(Position(10.0, 0.0), 1.0, 0.0, 5.0)), 0.0)
    assert not index.all_static


# ------------------------------------------------------------ gather cache
def test_repeated_static_query_hits_cache():
    index = SpatialIndex(cell_size=100.0)
    for i in range(4):
        index.add(_FakeRadio(i, StaticMobility(Position(i * 40.0, 0.0))), 0.0)
    center = Position(50.0, 0.0)
    first = index.candidates_within(center, 100.0, 0.0)
    assert index.cache_hits == 0
    second = index.candidates_within(center, 100.0, 1.0)
    assert index.cache_hits == 1
    assert second == first


def test_cache_invalidated_by_membership_change():
    index = SpatialIndex(cell_size=100.0)
    mobility = _LinearMobility(Position(50.0, 50.0), 100.0, 0.0, 100.0)
    mover = _FakeRadio(0, mobility)
    index.add(mover, 0.0)
    center = Position(50.0, 50.0)
    assert index.candidates_within(center, 40.0, 0.0) == [mover]
    # t=2: the mover crossed into x=250's cell; the cached gather for the
    # original cell must not be replayed.
    assert index.candidates_within(center, 40.0, 2.0) == []


def test_stats_shape():
    index = SpatialIndex(cell_size=100.0)
    index.add(_FakeRadio(0, StaticMobility(Position(0.0, 0.0))), 0.0)
    index.candidates_within(Position(0.0, 0.0), 50.0, 0.0)
    stats = index.stats()
    assert stats["radios"] == 1
    assert stats["cells"] == 1
    assert stats["rebins"] >= 1
    assert stats["refreshes"] == 1
    assert "cache_hits" in stats
