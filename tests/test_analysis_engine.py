"""Tests for the analysis engine: core model, suppressions, reporters, CLI."""

from __future__ import annotations

import ast
import io
import json

import pytest

from repro.analysis.core import (
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
    RuleRegistry,
    registry,
)
from repro.analysis.engine import analyze_paths, collect_files
from repro.analysis.cli import main
from repro.analysis.report import render_json, render_text
from repro.analysis.suppress import collect_suppressions, split_suppressed

from tests.analysis_helpers import lint_source, write_fixture


def _module(source: str, path: str = "src/repro/x.py") -> ModuleContext:
    return ModuleContext(path, source, ast.parse(source))


# ------------------------------------------------------------------- findings
def test_finding_location_and_dict():
    finding = Finding("src/a.py", 3, 7, "DET-001", "boom")
    assert finding.location() == "src/a.py:3:7"
    assert finding.as_dict() == {
        "path": "src/a.py",
        "line": 3,
        "column": 7,
        "rule": "DET-001",
        "message": "boom",
    }


def test_findings_sort_by_path_then_line():
    late = Finding("src/b.py", 1, 1, "DET-001", "m")
    early = Finding("src/a.py", 9, 1, "DET-001", "m")
    assert sorted([late, early]) == [early, late]


# ------------------------------------------------------------- module context
def test_import_alias_resolution():
    module = _module("import random as rnd\nimport os\n")
    assert module.resolves_to_module("rnd", "random")
    assert module.resolves_to_module("os", "os")
    assert not module.resolves_to_module("random", "random")


def test_from_import_resolution():
    module = _module("from random import Random as R\n")
    assert module.from_imports["R"] == ("random", "Random")


def test_parent_map():
    module = _module("x = f(1)\n")
    call = next(n for n in ast.walk(module.tree) if isinstance(n, ast.Call))
    assign = module.parent_of(call)
    assert isinstance(assign, ast.Assign)


# ------------------------------------------------------------ project context
def test_packet_table_follows_aliased_imports():
    direct = _module(
        "from repro.net.packet import Packet as _Packet\n"
        "class Hello(_Packet):\n    pass\n",
        path="src/repro/a.py",
    )
    indirect = _module(
        "from repro.a import Hello\nclass Beacon(Hello):\n    pass\n",
        path="src/repro/b.py",
    )
    project = ProjectContext([direct, indirect])
    assert "Hello" in project.packet_classes
    assert "Beacon" in project.packet_classes
    assert project.is_packet_class(indirect, "Hello")


def test_unrelated_class_is_not_packet():
    module = _module("class Metrics:\n    pass\n")
    project = ProjectContext([module])
    assert "Metrics" not in project.packet_classes


# ------------------------------------------------------------------- registry
def test_registry_rejects_duplicate_ids():
    fresh = RuleRegistry()

    class R(Rule):
        id = "DET-001"

    fresh.add(R())
    with pytest.raises(ValueError):
        fresh.add(R())


def test_registry_family_selection():
    det = registry.select(select=["DET"])
    assert det and all(rule.id.startswith("DET-") for rule in det)
    only = registry.select(select=["ANON-001"])
    assert [rule.id for rule in only] == ["ANON-001"]
    rest = registry.select(ignore=["DET"])
    assert rest and not any(rule.id.startswith("DET-") for rule in rest)


def test_global_registry_has_both_families():
    ids = {rule.id for rule in registry}
    assert {"DET-001", "DET-002", "DET-003", "DET-004", "DET-005"} <= ids
    assert {"ANON-001", "ANON-002"} <= ids


def test_rule_exempts_matches_trailing_components():
    class R(Rule):
        id = "T-001"
        exempt_paths = ("crypto/*", "test_*.py")

    rule = R()
    assert rule.exempts("src/repro/crypto/rsa.py")
    assert rule.exempts("tests/test_anything.py")
    assert not rule.exempts("src/repro/core/ant.py")
    # A *directory* whose name merely contains the pattern must not
    # exempt files beneath it (pytest tmp dirs are named test_<case>).
    assert not rule.exempts("/tmp/test_case0/src/repro/mod.py")


# --------------------------------------------------------------- suppressions
def test_bare_noqa_suppresses_everything():
    module = _module("x = 1  # repro: noqa\n")
    table = collect_suppressions(module)
    assert table.suppresses(Finding("src/repro/x.py", 1, 1, "DET-001", "m"))
    assert table.suppresses(Finding("src/repro/x.py", 1, 1, "ANON-002", "m"))


def test_scoped_noqa_only_matches_named_rules():
    module = _module("x = 1  # repro: noqa[DET-001, ANON-001]\n")
    table = collect_suppressions(module)
    assert table.suppresses(Finding("src/repro/x.py", 1, 1, "DET-001", "m"))
    assert table.suppresses(Finding("src/repro/x.py", 1, 1, "ANON-001", "m"))
    assert not table.suppresses(Finding("src/repro/x.py", 1, 1, "DET-002", "m"))


def test_noqa_is_line_scoped():
    module = _module("x = 1  # repro: noqa[DET-001]\ny = 2\n")
    table = collect_suppressions(module)
    assert not table.suppresses(Finding("src/repro/x.py", 2, 1, "DET-001", "m"))


def test_noqa_on_any_line_of_multiline_statement(tmp_path):
    """Regression: the comment used to match only the exact finding line,
    so a noqa on the closing paren of a wrapped call never suppressed
    the finding reported at the call's first line."""
    result = lint_source(
        tmp_path,
        """\
        import random

        value = random.choice(
            [1, 2, 3],
        )  # repro: noqa[DET-001]
        """,
        select=["DET-001"],
    )
    assert result.findings == []
    assert [f.rule_id for f in result.suppressed] == ["DET-001"]


def test_noqa_on_decorator_line_covers_the_def(tmp_path):
    """DET-007 reports at the ``def`` line, but the offending decorator
    (where the annotation naturally lives) may sit lines above it."""
    result = lint_source(
        tmp_path,
        """\
        import functools


        @functools.lru_cache  # repro: noqa[DET-007]
        def lookup(key):
            return key * 2
        """,
        select=["DET-007"],
    )
    assert result.findings == []
    assert [f.rule_id for f in result.suppressed] == ["DET-007"]


def test_noqa_on_def_line_does_not_blanket_the_body(tmp_path):
    """A compound statement's span is its *header* only — a noqa on the
    ``def`` line must not swallow findings inside the function body."""
    result = lint_source(
        tmp_path,
        """\
        import random


        def roll():  # repro: noqa[DET-001]
            return random.random()
        """,
        select=["DET-001"],
    )
    assert [f.rule_id for f in result.findings] == ["DET-001"]
    assert result.suppressed == []


def test_split_suppressed_partitions():
    module = _module("a = 1  # repro: noqa[DET-001]\n")
    keep = Finding("src/repro/x.py", 9, 1, "DET-001", "kept")
    drop = Finding("src/repro/x.py", 1, 1, "DET-001", "dropped")
    active, suppressed = split_suppressed([keep, drop], collect_suppressions(module))
    assert active == [keep]
    assert suppressed == [drop]


def test_suppressed_finding_is_reported_separately(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import random

        value = random.random()  # repro: noqa[DET-001]
        """,
        select=["DET-001"],
    )
    assert result.findings == []
    assert [f.rule_id for f in result.suppressed] == ["DET-001"]
    assert result.exit_code == 0


# --------------------------------------------------------------------- engine
def test_collect_files_sorted_and_skips_caches(tmp_path):
    write_fixture(tmp_path, "pkg/b.py", "x = 1\n")
    write_fixture(tmp_path, "pkg/a.py", "x = 1\n")
    write_fixture(tmp_path, "pkg/__pycache__/c.py", "x = 1\n")
    write_fixture(tmp_path, "pkg/readme.txt", "not python\n")
    files = collect_files([str(tmp_path / "pkg")])
    assert [f.name for f in files] == ["a.py", "b.py"]


def test_parse_error_yields_lint_000_and_exit_2(tmp_path):
    path = write_fixture(tmp_path, "src/bad.py", "def broken(:\n")
    result = analyze_paths([str(path)])
    assert result.findings == []
    assert [e.rule_id for e in result.errors] == ["LINT-000"]
    assert result.exit_code == 2


def test_clean_module_exit_0(tmp_path):
    result = lint_source(tmp_path, "import math\n\nTAU = 2 * math.pi\n")
    assert result.exit_code == 0
    assert result.files_analyzed == 1


# ------------------------------------------------------------------ reporters
def test_text_report_format(tmp_path):
    result = lint_source(
        tmp_path,
        "import random\nx = random.random()\n",
        select=["DET-001"],
    )
    text = render_text(result)
    line = text.splitlines()[0]
    assert line.startswith(f"{result.findings[0].path}:2:")
    assert "DET-001" in line
    assert "1 finding" in text.splitlines()[-1]
    assert "DET-001×1" in text.splitlines()[-1]


def test_json_report_shape(tmp_path):
    result = lint_source(
        tmp_path,
        "import random\nx = random.random()\n",
        select=["DET-001"],
    )
    payload = json.loads(render_json(result))
    assert payload["version"] == 2
    assert payload["exit_code"] == 1
    assert payload["counts"] == {"DET-001": 1}
    (finding,) = payload["findings"]
    assert finding["rule"] == "DET-001"
    assert finding["line"] == 2
    assert finding["path"].endswith("fixture_mod.py")


# ------------------------------------------------------------------------ cli
def test_cli_clean_run_exit_0(tmp_path):
    path = write_fixture(tmp_path, "src/ok.py", "VALUE = 3\n")
    out = io.StringIO()
    assert main([str(path)], stream=out) == 0
    assert "0 findings" in out.getvalue()


def test_cli_findings_exit_1_text_and_json(tmp_path):
    path = write_fixture(tmp_path, "src/dirty.py", "import random\nx = random.random()\n")
    text_out = io.StringIO()
    assert main([str(path), "--select", "DET-001"], stream=text_out) == 1
    assert "DET-001" in text_out.getvalue()

    json_out = io.StringIO()
    assert main([str(path), "--select", "DET-001", "--format", "json"], stream=json_out) == 1
    payload = json.loads(json_out.getvalue())
    assert payload["findings"][0]["rule"] == "DET-001"


def test_cli_ignore_flag(tmp_path):
    path = write_fixture(tmp_path, "src/dirty.py", "import random\nx = random.random()\n")
    out = io.StringIO()
    assert main([str(path), "--ignore", "DET"], stream=out) == 0


def test_cli_list_rules(tmp_path):
    out = io.StringIO()
    assert main(["--list-rules"], stream=out) == 0
    listing = out.getvalue()
    for rule_id in ("DET-001", "DET-005", "ANON-001", "ANON-002"):
        assert rule_id in listing


def test_cli_parse_error_exit_2(tmp_path):
    path = write_fixture(tmp_path, "src/broken.py", "def nope(:\n")
    out = io.StringIO()
    assert main([str(path)], stream=out) == 2
    assert "LINT-000" in out.getvalue()
