"""Tests for the plain (GPSR) neighbor table."""

from __future__ import annotations

import pytest

from repro.geo.vec import Position
from repro.net.addresses import mac_for_node
from repro.routing.neighbor_table import NeighborTable


def _table(timeout=4.5):
    return NeighborTable(timeout)


def test_update_and_get():
    table = _table()
    table.update("n1", mac_for_node(1), Position(10, 0), now=0.0)
    entry = table.get("n1")
    assert entry is not None
    assert entry.position == Position(10, 0)
    assert entry.mac == mac_for_node(1)


def test_update_refreshes_in_place():
    table = _table()
    table.update("n1", mac_for_node(1), Position(10, 0), now=0.0)
    table.update("n1", mac_for_node(1), Position(20, 0), now=1.0)
    assert len(table) == 1
    assert table.get("n1").position == Position(20, 0)


def test_purge_drops_expired():
    table = _table(timeout=2.0)
    table.update("old", mac_for_node(1), Position(0, 0), now=0.0)
    table.update("new", mac_for_node(2), Position(0, 0), now=3.0)
    assert table.purge(now=3.0) == 1
    assert "old" not in table
    assert "new" in table


def test_entries_filters_by_age():
    table = _table(timeout=2.0)
    table.update("old", mac_for_node(1), Position(0, 0), now=0.0)
    table.update("new", mac_for_node(2), Position(0, 0), now=3.0)
    assert len(table.entries()) == 2  # unfiltered
    assert [e.identity for e in table.entries(now=3.0)] == ["new"]


def test_remove():
    table = _table()
    table.update("n1", mac_for_node(1), Position(0, 0), now=0.0)
    table.remove("n1")
    assert "n1" not in table
    table.remove("n1")  # idempotent


def test_best_towards_picks_closest():
    table = _table()
    table.update("near", mac_for_node(1), Position(100, 0), now=0.0)
    table.update("far", mac_for_node(2), Position(50, 0), now=0.0)
    best = table.best_towards(Position(300, 0), Position(0, 0), now=0.0)
    assert best.identity == "near"


def test_best_towards_requires_strict_progress():
    """A neighbor no closer than us is not a greedy next hop — that is the
    local-maximum condition."""
    table = _table()
    table.update("behind", mac_for_node(1), Position(-50, 0), now=0.0)
    assert table.best_towards(Position(300, 0), Position(0, 0), now=0.0) is None


def test_best_towards_ignores_expired():
    table = _table(timeout=1.0)
    table.update("stale", mac_for_node(1), Position(100, 0), now=0.0)
    assert table.best_towards(Position(300, 0), Position(0, 0), now=5.0) is None


def test_best_towards_empty_table():
    assert _table().best_towards(Position(1, 1), Position(0, 0), now=0.0) is None


def test_timeout_must_be_positive():
    with pytest.raises(ValueError):
        NeighborTable(0.0)


def test_entry_age():
    table = _table()
    table.update("n", mac_for_node(1), Position(0, 0), now=2.0)
    assert table.get("n").age(5.0) == pytest.approx(3.0)
