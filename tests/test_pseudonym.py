"""Tests for pseudonym generation and the two-pseudonym memory."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pseudonym import (
    LAST_ATTEMPT,
    PSEUDONYM_BYTES,
    PseudonymManager,
    derive_pseudonym,
)


def test_pseudonym_width_matches_mac_address():
    """Paper Sec 5: 'the size of pseudonym is equal to that of a typical
    MAC address' — 6 bytes."""
    assert PSEUDONYM_BYTES == 6
    assert len(derive_pseudonym(b"pr", "node-1")) == 6


def test_derive_deterministic():
    assert derive_pseudonym(b"pr", "id") == derive_pseudonym(b"pr", "id")


def test_derive_varies_with_pr_and_identity():
    assert derive_pseudonym(b"pr1", "id") != derive_pseudonym(b"pr2", "id")
    assert derive_pseudonym(b"pr", "id1") != derive_pseudonym(b"pr", "id2")


def test_zero_pseudonym_reserved():
    assert LAST_ATTEMPT == b"\x00" * 6


def test_manager_mints_fresh_each_time():
    manager = PseudonymManager("node-1", random.Random(0))
    names = {manager.new_pseudonym() for _ in range(50)}
    assert len(names) == 50


def test_manager_owns_two_latest_only():
    """Paper: 'it does not need to memorize too many but two latest ones'."""
    manager = PseudonymManager("node-1", random.Random(0), memory=2)
    first = manager.new_pseudonym()
    second = manager.new_pseudonym()
    assert manager.owns(first) and manager.owns(second)
    third = manager.new_pseudonym()
    assert not manager.owns(first)
    assert manager.owns(second) and manager.owns(third)


def test_manager_never_owns_last_attempt():
    manager = PseudonymManager("node-1", random.Random(0))
    assert not manager.owns(LAST_ATTEMPT)


def test_manager_current_and_recent():
    manager = PseudonymManager("node-1", random.Random(0), memory=3)
    assert manager.current is None
    a = manager.new_pseudonym()
    b = manager.new_pseudonym()
    assert manager.current == b
    assert manager.recent == (a, b)


def test_manager_memory_configurable():
    manager = PseudonymManager("node-1", random.Random(0), memory=1)
    a = manager.new_pseudonym()
    b = manager.new_pseudonym()
    assert not manager.owns(a)
    assert manager.owns(b)


def test_manager_memory_must_be_positive():
    with pytest.raises(ValueError):
        PseudonymManager("x", random.Random(0), memory=0)


def test_managers_with_different_seeds_diverge():
    a = PseudonymManager("node-1", random.Random(1)).new_pseudonym()
    b = PseudonymManager("node-1", random.Random(2)).new_pseudonym()
    assert a != b


def test_pseudonyms_unlinkable_to_identity_without_pr():
    """Two pseudonyms from the same node share no obvious structure: the
    unlinkability ANT anonymity rests on (statistical smoke test)."""
    manager = PseudonymManager("node-1", random.Random(3))
    samples = [manager.new_pseudonym() for _ in range(200)]
    first_bytes = {s[0] for s in samples}
    assert len(first_bytes) > 100  # near-uniform first byte


@given(st.binary(min_size=1, max_size=32), st.text(min_size=1, max_size=20))
@settings(max_examples=100)
def test_derive_never_returns_reserved(pr, identity):
    assert derive_pseudonym(pr, identity) != LAST_ATTEMPT
